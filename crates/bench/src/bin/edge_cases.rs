//! §IV-D edge cases: per-destination change in the minimum (best-case)
//! and maximum (worst-case) completion time for 100 KB probes — the
//! paper finds essentially no change in the minimum and no consistent
//! trend in the maximum.

use riptide_bench::{banner, parse_args, pooled_probe_comparison};
use riptide_cdn::experiment::{edge_cases, probe_sender_sites};

fn main() {
    let opts = parse_args();
    banner(
        "Section IV-D",
        "edge cases: best/worst completion change per destination, 100 KB probes",
    );
    let cmp = pooled_probe_comparison(&opts);
    for &sender in &probe_sender_sites(&opts.scale) {
        let rows = edge_cases(&cmp, sender, 100_000);
        println!("\n## sender site {sender}");
        println!(
            "{:>9} {:>14} {:>14}",
            "dst_site", "min_change_%", "max_change_%"
        );
        let mut min_within_5 = 0usize;
        for r in &rows {
            println!(
                "{:>9} {:>14.1} {:>14.1}",
                r.dst_site,
                r.min_change * 100.0,
                r.max_change * 100.0
            );
            if r.min_change.abs() <= 0.05 {
                min_within_5 += 1;
            }
        }
        println!(
            "# minimum within ±5% for {}/{} destinations (paper: 75–100%)",
            min_within_5,
            rows.len()
        );
    }
    println!("\n# paper: best case essentially unchanged; worst case shows no consistent trend");
}
