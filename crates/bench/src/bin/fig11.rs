//! Figure 11: observed congestion windows for Riptide at two
//! datacenters — one carrying only probe traffic, one among the busiest
//! in the network. Runs as a single shard on the parallel engine (the
//! two sites share one world, so the profile cannot be split).

use riptide_bench::{banner, execute_plan, parse_args, print_cdf_series, print_cdf_summary};
use riptide_cdn::engine::RunPlan;

fn main() {
    let opts = parse_args();
    banner(
        "Figure 11",
        "live windows at a probe-only PoP vs a busy PoP (both running Riptide)",
    );
    let plan = RunPlan::traffic_profile(&opts.scale);
    let report = execute_plan(&opts, &plan);
    let (probe_only, busy) = report.profile().expect("plan ran a profile shard");
    println!("{:>16} {:>12} {:>7}", "series", "cwnd_segs", "cdf");
    print_cdf_series("probe-only", &probe_only, opts.points);
    print_cdf_series("busy", &busy, opts.points);
    println!();
    print_cdf_summary("probe-only", &probe_only);
    print_cdf_summary("busy", &busy);
    println!("\n# paper: busy PoP reaches a window of 100 on 44% of connections;");
    println!("#        probe-only PoP has median 75 and is below 100 in 99% of cases");
    println!(
        "# measured: busy at>=100: {:.1}%; probe-only median {:.0}, below 100 in {:.1}%",
        (1.0 - busy.fraction_at_or_below(99.5)) * 100.0,
        probe_only.median(),
        probe_only.fraction_at_or_below(99.5) * 100.0
    );
}
