//! Figure 11: observed congestion windows for Riptide at two
//! datacenters — one carrying only probe traffic, one among the busiest
//! in the network.

use riptide_bench::{banner, parse_args, print_cdf_series, print_cdf_summary};
use riptide_cdn::experiment::traffic_profile;

fn main() {
    let opts = parse_args();
    banner(
        "Figure 11",
        "live windows at a probe-only PoP vs a busy PoP (both running Riptide)",
    );
    let (probe_only, busy) = traffic_profile(&opts.scale);
    println!("{:>16} {:>12} {:>7}", "series", "cwnd_segs", "cdf");
    print_cdf_series("probe-only", &probe_only, opts.points);
    print_cdf_series("busy", &busy, opts.points);
    println!();
    print_cdf_summary("probe-only", &probe_only);
    print_cdf_summary("busy", &busy);
    println!("\n# paper: busy PoP reaches a window of 100 on 44% of connections;");
    println!("#        probe-only PoP has median 75 and is below 100 in 99% of cases");
    println!(
        "# measured: busy at>=100: {:.1}%; probe-only median {:.0}, below 100 in {:.1}%",
        (1.0 - busy.fraction_at_or_below(99.5)) * 100.0,
        probe_only.median(),
        probe_only.fraction_at_or_below(99.5) * 100.0
    );
}
