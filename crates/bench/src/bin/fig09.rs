//! Figure 9: "Markers indicate PoPs with current Riptide deployment" —
//! rendered as an equirectangular ASCII world map with one marker per
//! PoP site, initialed by continent (E/N/S/A/O).

use riptide_cdn::geo::{Continent, POP_SITES};

const WIDTH: usize = 100;
const HEIGHT: usize = 32;

fn project(lat: f64, lon: f64) -> (usize, usize) {
    // Equirectangular: lon -180..180 → 0..WIDTH, lat 75..-55 → 0..HEIGHT
    // (cropped to inhabited latitudes).
    let x = ((lon + 180.0) / 360.0 * (WIDTH as f64 - 1.0)).round() as usize;
    let y = ((75.0 - lat) / 130.0 * (HEIGHT as f64 - 1.0)).round() as usize;
    (x.min(WIDTH - 1), y.min(HEIGHT - 1))
}

fn marker(c: Continent) -> char {
    match c {
        Continent::Europe => 'E',
        Continent::NorthAmerica => 'N',
        Continent::SouthAmerica => 'S',
        Continent::Asia => 'A',
        Continent::Oceania => 'O',
    }
}

fn main() {
    println!("# Figure 9: PoPs with current Riptide deployment (equirectangular)");
    let mut grid = vec![vec!['.'; WIDTH]; HEIGHT];
    for site in &POP_SITES {
        let (x, y) = project(site.lat, site.lon);
        grid[y][x] = marker(site.continent);
    }
    for row in &grid {
        println!("{}", row.iter().collect::<String>());
    }
    println!("\n# E=Europe N=North America S=South America A=Asia O=Oceania");
    for site in &POP_SITES {
        let (x, y) = project(site.lat, site.lon);
        println!(
            "# {:<13} {:>13}  ({x:>3},{y:>2})",
            site.name,
            site.continent.to_string()
        );
    }
}
