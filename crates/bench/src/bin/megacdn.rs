//! Million-prefix destination-table benchmark: the compressed trie,
//! the aggregation pass, capacity-bounded eviction and reconcile
//! audits, all at mega-CDN scale (1 M+ learned destinations at
//! `--scale quick`).
//!
//! ```text
//! cargo run --release --bin megacdn -- [--scale test|quick|paper]
//!     [--check] [--out PATH]
//! ```
//!
//! * Default mode measures and rewrites `BENCH_megacdn.json`.
//! * `--check` regression mode re-measures and compares against the
//!   checked-in baseline instead: a lookup or round-trip digest
//!   mismatch (behaviour drift) is always fatal, as is a structural
//!   gate — the merge/split round trip must be exact, the reconcile
//!   audit must converge, aggregation must fold the table at least
//!   [`MIN_AGGREGATION_RATIO`]×, and grouped eviction at `N` entries
//!   must cost no more than [`MAX_EVICT_SCALING`]× the `N/4` run
//!   (sublinearity is measured within the run, so the gate is immune
//!   to machine speed).

use std::process::ExitCode;
use std::time::Instant;

use riptide::prelude::*;
use riptide_bench::banner;
use riptide_cdn::megacdn::MegaCdnConfig;
use riptide_linuxnet::lpm::LpmTrie;
use riptide_linuxnet::prefix::Ipv4Prefix;
use riptide_linuxnet::route::RouteTable;
use riptide_simnet::rng::DetRng;
use riptide_simnet::time::SimTime;

const BENCH_FILE: &str = "BENCH_megacdn.json";
/// `--check` fails unless learned entries ≥ this × installed routes.
const MIN_AGGREGATION_RATIO: f64 = 4.0;
/// `--check` fails when grouped eviction at `N` entries costs more
/// than this × the `N/4` run **per evicted entry**. The sorted
/// `O(n + k log k)` implementation's per-entry cost grows only with
/// cache pressure (≈ 2–2.5× here); a repeated-min scan (`O(n·k)`) has
/// per-entry cost proportional to `n` and lands at ≈ 4×.
const MAX_EVICT_SCALING: f64 = 3.5;
/// Rebuild-and-evict rounds per phase-D arm; each arm reports its
/// minimum, the robust estimator against scheduler noise (a single
/// test-scale eviction is sub-millisecond).
const EVICT_TRIALS: usize = 3;
/// Lookups issued against the trie in phase A.
const LOOKUPS: usize = 1 << 20;

struct Options {
    scale_name: String,
    cfg: MegaCdnConfig,
    check: bool,
    out: std::path::PathBuf,
}

fn parse() -> Options {
    let mut opts = Options {
        scale_name: "quick".into(),
        cfg: MegaCdnConfig::quick(),
        check: false,
        out: std::path::PathBuf::from(BENCH_FILE),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                opts.cfg = match v.as_str() {
                    "test" => MegaCdnConfig::test(),
                    "quick" => MegaCdnConfig::quick(),
                    "paper" => MegaCdnConfig::paper(),
                    other => panic!("unknown scale {other:?} (test|quick|paper)"),
                };
                opts.scale_name = v;
            }
            "--check" => opts.check = true,
            "--out" => opts.out = std::path::PathBuf::from(value("--out")),
            "--help" | "-h" => {
                println!("usage: megacdn [--scale test|quick|paper] [--check] [--out PATH]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; try --help"),
        }
    }
    opts
}

/// Pulls `"key": <value>` out of the flat bench JSON (no nested objects,
/// so a string scan suffices — the workspace has no JSON dependency).
fn json_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find([',', '\n', '}'])
        .expect("bench JSON values end the line");
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of an installed-routes view: key order is the `BTreeMap`'s,
/// so equal views digest equal whatever history produced them.
fn digest_view(view: &std::collections::BTreeMap<Ipv4Prefix, u32>) -> u64 {
    let mut text = String::new();
    for (key, window) in view {
        text.push_str(&format!("{key}={window};"));
    }
    fnv1a64(text.as_bytes())
}

/// An observer handing out one pre-built sweep.
struct SweepObserver(Vec<CwndObservation>);
impl WindowObserver for SweepObserver {
    fn observe(&mut self) -> Vec<CwndObservation> {
        std::mem::take(&mut self.0)
    }
}

struct Measured {
    destinations: usize,
    trie_insert_per_sec: f64,
    trie_lookup_ns: f64,
    trie_nodes: usize,
    trie_mem_bytes: usize,
    lookup_digest: String,
    tick_ms: [u64; 3],
    learned_entries: usize,
    installed_routes: usize,
    aggregation_ratio: f64,
    aggregate_merges: u64,
    aggregate_splits: u64,
    roundtrip_digest: String,
    roundtrip_ok: bool,
    reconcile_ms: u64,
    reconcile_converged: bool,
    evict_large_ms: f64,
    evict_small_ms: f64,
    evict_scaling_ratio: f64,
}

/// Phase A: raw trie cost at fleet scale — shuffled inserts, then
/// Zipf-popular lookups with the result stream digested.
fn bench_trie(cfg: &MegaCdnConfig) -> (f64, f64, usize, usize, String) {
    let n = cfg.total_destinations();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = DetRng::for_stream(cfg.seed, 0x5452_4945); // "TRIE"
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i + 1));
    }

    let mut trie: LpmTrie<u32> = LpmTrie::new();
    let started = Instant::now();
    for &i in &order {
        let idx = i as usize;
        let (pop, host) = (idx / cfg.hosts_per_pop, idx % cfg.hosts_per_pop);
        let key = Ipv4Prefix::host(cfg.host_addr(pop, host));
        trie.insert(key, cfg.window_for(pop, host, false));
    }
    let insert_secs = started.elapsed().as_secs_f64();
    assert_eq!(trie.len(), n, "every destination inserted exactly once");

    let zipf = cfg.popularity();
    let mut rng = DetRng::for_stream(cfg.seed, 0x4c4f_4f4b); // "LOOK"
    let targets: Vec<std::net::Ipv4Addr> = (0..LOOKUPS)
        .map(|_| cfg.addr_of_index(cfg.rank_to_index(zipf.sample(&mut rng))))
        .collect();
    let started = Instant::now();
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &addr in &targets {
        let hit = trie.lookup(addr).map(|(_, w)| *w).unwrap_or(0);
        acc ^= u64::from(hit);
        acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let lookup_secs = started.elapsed().as_secs_f64();

    (
        n as f64 / insert_secs.max(1e-9),
        lookup_secs * 1e9 / LOOKUPS as f64,
        trie.node_count(),
        trie.mem_bytes(),
        format!("{acc:016x}"),
    )
}

/// Phase D: grouped-eviction scaling — the same 25%-of-units eviction
/// at `N` and `N/4` learned entries, timed within this run. The ratio
/// is **per evicted entry** (the large run also evicts 4× the
/// entries), so linear-with-size implementations show up directly.
/// Each arm takes the minimum over [`EVICT_TRIALS`] rebuild-and-evict
/// rounds: at test scale a single eviction is sub-millisecond, and the
/// minimum is the standard robust estimator against scheduler noise.
fn bench_eviction(cfg: &MegaCdnConfig) -> (f64, f64, f64) {
    let policy = AggregationPolicy::default();
    let run = |pops: usize| -> (f64, usize) {
        let strategy = HistoryStrategy::None;
        let units = pops * cfg.hosts_per_pop / 256;
        let mut best_ms = f64::INFINITY;
        let mut evicted_len = 0;
        for _ in 0..EVICT_TRIALS {
            let mut table = FinalTable::bounded(units * 3 / 4);
            let mut stamp = 0u64;
            for pop in 0..pops {
                for host in 0..cfg.hosts_per_pop {
                    let key = Ipv4Prefix::host(cfg.host_addr(pop, host));
                    stamp += 1;
                    table.blend(key, 40.0, &strategy, SimTime::from_secs(stamp));
                    table.set_window(&key, 40);
                }
            }
            let started = Instant::now();
            let evicted = table.enforce_capacity_grouped(|k| policy.covering_of(k));
            let elapsed = started.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                evicted.len(),
                (units / 4) * 256,
                "a quarter of the units leave, whole"
            );
            best_ms = best_ms.min(elapsed);
            evicted_len = evicted.len();
        }
        (best_ms, evicted_len)
    };
    let (large_ms, large_evicted) = run(cfg.pops);
    let (small_ms, small_evicted) = run(cfg.pops / 4);
    let per_entry_ratio =
        (large_ms / large_evicted as f64) / (small_ms / small_evicted as f64).max(1e-9);
    (large_ms, small_ms, per_entry_ratio)
}

fn measure(cfg: &MegaCdnConfig) -> Measured {
    cfg.validate().expect("benchmark shapes are valid");
    let destinations = cfg.total_destinations();
    eprintln!(
        "megacdn: {} PoPs x {} hosts = {destinations} destinations",
        cfg.pops, cfg.hosts_per_pop
    );

    eprintln!("phase A: trie insert/lookup...");
    let (trie_insert_per_sec, trie_lookup_ns, trie_nodes, trie_mem_bytes, lookup_digest) =
        bench_trie(cfg);

    eprintln!("phase B: aggregation arena (converge / diverge / re-converge)...");
    let config = RiptideConfig::builder()
        .history(HistoryStrategy::None)
        .aggregation(AggregationPolicy::default())
        .build()
        .expect("arena config is valid");
    let mut agent = RiptideAgent::new(config).expect("validated above");
    agent.attach_telemetry(AgentTelemetry::standalone(4096));
    let mut routes = RouteTable::new();
    let mut tick_ms = [0u64; 3];
    let mut digests = [0u64; 3];
    for (i, diverge) in [false, true, false].into_iter().enumerate() {
        let mut sweep = SweepObserver(cfg.observations(diverge));
        let started = Instant::now();
        agent.tick(SimTime::from_secs(i as u64 + 1), &mut sweep, &mut routes);
        tick_ms[i] = started.elapsed().as_millis() as u64;
        digests[i] = digest_view(agent.installed_view());
    }
    let stats = agent.stats();
    let learned_entries = agent.table().len();
    let installed_routes = agent.installed_view().len();
    let aggregation_ratio = learned_entries as f64 / installed_routes.max(1) as f64;
    let roundtrip_ok = digests[0] == digests[2];

    eprintln!("phase C: reconcile audit over the aggregated view...");
    let dump = routes.clone();
    let started = Instant::now();
    let report = agent.reconcile(&dump, &mut routes);
    let reconcile_ms = started.elapsed().as_millis() as u64;
    let reconcile_converged = report.converged();

    eprintln!("phase D: grouped-eviction scaling...");
    let (evict_large_ms, evict_small_ms, evict_scaling_ratio) = bench_eviction(cfg);

    Measured {
        destinations,
        trie_insert_per_sec,
        trie_lookup_ns,
        trie_nodes,
        trie_mem_bytes,
        lookup_digest,
        tick_ms,
        learned_entries,
        installed_routes,
        aggregation_ratio,
        aggregate_merges: stats.aggregate_merges,
        aggregate_splits: stats.aggregate_splits,
        roundtrip_digest: format!("{:016x}", digests[0]),
        roundtrip_ok,
        reconcile_ms,
        reconcile_converged,
        evict_large_ms,
        evict_small_ms,
        evict_scaling_ratio,
    }
}

fn structural_gates(m: &Measured) -> Result<(), String> {
    if !m.roundtrip_ok {
        return Err(format!(
            "merge/split round trip drifted: tick-1 digest {} != tick-3",
            m.roundtrip_digest
        ));
    }
    if !m.reconcile_converged {
        return Err("reconcile audit over the aggregated view did not converge".into());
    }
    if m.aggregation_ratio < MIN_AGGREGATION_RATIO {
        return Err(format!(
            "aggregation ratio {:.1} below the {MIN_AGGREGATION_RATIO} floor \
             ({} learned / {} installed)",
            m.aggregation_ratio, m.learned_entries, m.installed_routes
        ));
    }
    if m.evict_scaling_ratio > MAX_EVICT_SCALING {
        return Err(format!(
            "grouped eviction scaled superlinearly: 4x the entries cost {:.1}x \
             ({:.1} ms vs {:.1} ms; ceiling {MAX_EVICT_SCALING}x)",
            m.evict_scaling_ratio, m.evict_large_ms, m.evict_small_ms
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = parse();
    banner(
        "Mega-CDN destination table",
        "trie lookup/insert, aggregation round trip, reconcile and eviction at 1M+ prefixes",
    );
    let m = measure(&opts.cfg);

    if opts.check {
        let text = match std::fs::read_to_string(&opts.out) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("megacdn: cannot read {}: {e}", opts.out.display());
                return ExitCode::FAILURE;
            }
        };
        let want_scale = json_field(&text, "scale").unwrap_or_default();
        if want_scale != opts.scale_name {
            eprintln!(
                "megacdn: {} was recorded at --scale {want_scale}, this run used --scale {}",
                opts.out.display(),
                opts.scale_name
            );
            return ExitCode::FAILURE;
        }
        for (field, got) in [
            ("lookup_digest", &m.lookup_digest),
            ("roundtrip_digest", &m.roundtrip_digest),
        ] {
            let want = json_field(&text, field).unwrap_or_default();
            if want != *got {
                eprintln!(
                    "megacdn: DIGEST DRIFT in {field} — baseline {want}, got {got}; \
                     the destination table's observable behaviour changed"
                );
                return ExitCode::FAILURE;
            }
        }
        if let Err(why) = structural_gates(&m) {
            eprintln!("megacdn: GATE FAILED — {why}");
            return ExitCode::FAILURE;
        }
        println!(
            "# check: digests ok; ratio {:.0}x over {} destinations; \
             eviction scaling {:.1}x (<= {MAX_EVICT_SCALING}); reconcile {} ms",
            m.aggregation_ratio, m.destinations, m.evict_scaling_ratio, m.reconcile_ms
        );
        return ExitCode::SUCCESS;
    }

    if let Err(why) = structural_gates(&m) {
        eprintln!("megacdn: GATE FAILED — {why}");
        return ExitCode::FAILURE;
    }

    let json = format!(
        "{{\n  \"benchmark\": \"megacdn-destination-table\",\n  \
         \"scale\": \"{}\",\n  \"pops\": {},\n  \"hosts_per_pop\": {},\n  \
         \"destinations\": {},\n  \"trie_insert_per_sec\": {:.0},\n  \
         \"trie_lookup_ns\": {:.1},\n  \"trie_nodes\": {},\n  \
         \"peak_table_bytes\": {},\n  \"lookup_digest\": \"{}\",\n  \
         \"tick_converge_ms\": {},\n  \"tick_diverge_ms\": {},\n  \
         \"tick_reconverge_ms\": {},\n  \"learned_entries\": {},\n  \
         \"installed_routes\": {},\n  \"aggregation_ratio\": {:.1},\n  \
         \"aggregate_merges\": {},\n  \"aggregate_splits\": {},\n  \
         \"roundtrip_digest\": \"{}\",\n  \"roundtrip_ok\": {},\n  \
         \"reconcile_ms\": {},\n  \"reconcile_converged\": {},\n  \
         \"evict_large_ms\": {:.1},\n  \"evict_small_ms\": {:.1},\n  \
         \"evict_scaling_ratio\": {:.2}\n}}\n",
        opts.scale_name,
        opts.cfg.pops,
        opts.cfg.hosts_per_pop,
        m.destinations,
        m.trie_insert_per_sec,
        m.trie_lookup_ns,
        m.trie_nodes,
        m.trie_mem_bytes,
        m.lookup_digest,
        m.tick_ms[0],
        m.tick_ms[1],
        m.tick_ms[2],
        m.learned_entries,
        m.installed_routes,
        m.aggregation_ratio,
        m.aggregate_merges,
        m.aggregate_splits,
        m.roundtrip_digest,
        m.roundtrip_ok,
        m.reconcile_ms,
        m.reconcile_converged,
        m.evict_large_ms,
        m.evict_small_ms,
        m.evict_scaling_ratio,
    );
    std::fs::write(&opts.out, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", opts.out.display()));
    print!("{json}");
    println!(
        "# {} destinations -> {} routes ({:.0}x); trie {:.1} ns/lookup, {} bytes",
        m.destinations, m.installed_routes, m.aggregation_ratio, m.trie_lookup_ns, m.trie_mem_bytes
    );
    ExitCode::SUCCESS
}
