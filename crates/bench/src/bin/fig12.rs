//! Figure 12: CDF of probe completion time for 10 KB probes, grouped by
//! destination RTT — Riptide has no discernible effect (and no harm),
//! since 10 KB already fits in the default initial window.

use riptide_bench::{parse_args, run_probe_time_figure};

fn main() {
    let opts = parse_args();
    run_probe_time_figure(
        &opts,
        10_000,
        "Figure 12",
        "10KB probes show no change — they already fit in the default window of 10",
    );
}
