//! Figure 3: CDF of the number of RTTs needed to transfer files of the
//! Fig. 2 size distribution, for initial windows 10, 25, 50 and 100.

use riptide::model::{rtts_for_bytes, DEFAULT_MSS};
use riptide_bench::{banner, parse_args};
use riptide_cdn::workload::FileSizeDist;
use riptide_simnet::rng::DetRng;

fn main() {
    let opts = parse_args();
    banner(
        "Figure 3",
        "RTTs needed to transfer files of the Fig. 2 distribution (lossless model)",
    );
    let dist = FileSizeDist::fig2();
    let mut rng = DetRng::from_seed(opts.scale.seed);
    let n = 200_000;
    let sizes: Vec<u64> = (0..n).map(|_| dist.sample(&mut rng)).collect();

    let windows = [10u32, 25, 50, 100];
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "rtts<=", "iw10", "iw25", "iw50", "iw100"
    );
    let mut first_rtt = [0.0f64; 4];
    for max_rtts in 1..=8u32 {
        let mut row = Vec::with_capacity(4);
        for (i, &iw) in windows.iter().enumerate() {
            let frac = sizes
                .iter()
                .filter(|&&s| rtts_for_bytes(s, DEFAULT_MSS, iw) <= max_rtts)
                .count() as f64
                / n as f64;
            if max_rtts == 1 {
                first_rtt[i] = frac;
            }
            row.push(frac);
        }
        println!(
            "{:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            max_rtts, row[0], row[1], row[2], row[3]
        );
    }

    println!("\n# paper: window 50 lets 31% more files complete in the first RTT than window 10;");
    println!("#        window 100 leaves only ~15% needing more than one RTT");
    println!(
        "# measured: one-RTT fraction iw10={:.1}% iw50={:.1}% (+{:.1}pp), iw100 leaves {:.1}%",
        first_rtt[0] * 100.0,
        first_rtt[2] * 100.0,
        (first_rtt[2] - first_rtt[0]) * 100.0,
        (1.0 - first_rtt[3]) * 100.0
    );
}
