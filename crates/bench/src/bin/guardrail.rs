//! Guardrail: does the closed loop restore §IV-D no-harm when the loss
//! shows up *because of* the jump-start?
//!
//! Sweeps [`FaultPlan::guardrail`] rates (route churn behind the
//! agent's back plus loss episodes targeted at freshly jump-started
//! paths) over a three-arm §IV-B2 probe experiment — kernel-default
//! control, unguarded Riptide, and Riptide with the loss-aware circuit
//! breaker — with a reconciler audit every five minutes. Reports per
//! size the three medians and the harm each Riptide arm carries
//! relative to control, and asserts the closed-loop safety claims:
//!
//! * the zero-rate control and unguarded arms reproduce the fault-free
//!   probe comparison bit for bit;
//! * every injected route drift is repaired (none left at run end) and
//!   no foreign route is ever touched;
//! * no installed window ever leaves `[c_min, c_max]`, in any arm;
//! * under targeted loss the breaker trips, and the guarded arm carries
//!   less harm than the unguarded arm.
//!
//! Writes a machine-readable summary to `BENCH_guardrail.json`.
//!
//! ```text
//! cargo run --release --bin guardrail -- --scale test --seeds 2
//! ```
//!
//! [`FaultPlan::guardrail`]: riptide_simnet::fault::FaultPlan::guardrail

use riptide_bench::{banner, execute_plan, parse_args, write_bench_json};
use riptide_cdn::engine::RunPlan;
use riptide_cdn::sim::ProbeOutcome;
use riptide_cdn::stats::Cdf;

const RATES: [f64; 3] = [0.0, 0.1, 0.3];

fn median_ms(probes: &[ProbeOutcome], size: u64) -> Option<f64> {
    let cdf = Cdf::new(
        probes
            .iter()
            .filter(|p| p.size == size)
            .map(|p| p.completion.as_millis_f64()),
    );
    (!cdf.is_empty()).then(|| cdf.median())
}

/// Mean across probe sizes of the median harm vs control, in percent
/// (positive = slower than control).
fn mean_harm(control: &[ProbeOutcome], treated: &[ProbeOutcome], sizes: &[u64]) -> f64 {
    let mut harms = Vec::new();
    for &size in sizes {
        if let (Some(c), Some(t)) = (median_ms(control, size), median_ms(treated, size)) {
            harms.push((t - c) / c * 100.0);
        }
    }
    harms.iter().sum::<f64>() / harms.len().max(1) as f64
}

fn main() {
    let opts = parse_args();
    banner(
        "Guardrail",
        "no-harm restoration under targeted loss and route churn (0/10/30% rates)",
    );
    let plan = RunPlan::guardrail_sweep(&opts.scale, &RATES, opts.seeds as u32);
    let report = execute_plan(&opts, &plan);

    // The zero-churn arms must be bit-identical to the fault-free probe
    // comparison: the guardrail machinery adds nothing until it fires.
    let baseline = execute_plan(
        &opts,
        &RunPlan::probe_comparison(&opts.scale, opts.seeds as u32),
    );
    assert_eq!(
        report.merged_guardrail_probes(0),
        baseline.merged_probes(0),
        "zero-rate control arm diverged from the fault-free comparison"
    );
    assert_eq!(
        report.merged_guardrail_probes(1),
        baseline.merged_probes(1),
        "zero-rate riptide arm diverged from the fault-free comparison"
    );
    println!("# zero-rate arms bit-identical to the fault-free probe comparison");

    let sizes = riptide_cdn::workload::ProbeConfig::default().sizes;
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "rate", "size_kb", "control_ms", "riptide_ms", "guarded_ms", "rip_harm%", "grd_harm%"
    );
    let mut summary = Vec::new();
    for (i, &rate) in RATES.iter().enumerate() {
        let base = 3 * i as u32;
        let control = report.merged_guardrail_probes(base);
        let riptide = report.merged_guardrail_probes(base + 1);
        let guarded = report.merged_guardrail_probes(base + 2);
        for &size in &sizes {
            let (c, r, g) = match (
                median_ms(&control, size),
                median_ms(&riptide, size),
                median_ms(&guarded, size),
            ) {
                (Some(c), Some(r), Some(g)) => (c, r, g),
                _ => continue,
            };
            println!(
                "{:>6} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>9.1} {:>9.1}",
                rate,
                size / 1000,
                c,
                r,
                g,
                (r - c) / c * 100.0,
                (g - c) / c * 100.0,
            );
        }
        let rip_harm = mean_harm(&control, &riptide, &sizes);
        let grd_harm = mean_harm(&control, &guarded, &sizes);

        // Safety counters, both Riptide arms.
        for (arm, scenario) in [("riptide", base + 1), ("guarded", base + 2)] {
            let cr = report.merged_guardrail_report(scenario);
            println!(
                "#   rate {rate} {arm}: churns {} (deleted {} / orphaned {} / foreign {}), \
                 repairs {}, foreign seen {}, unrepaired {}, foreign touched {}, \
                 targeted bursts {}, guard trips {}",
                cr.faults.route_churns,
                cr.drift_deleted,
                cr.drift_orphaned,
                cr.foreign_injected,
                cr.reconcile_repairs,
                cr.reconcile_foreign_seen,
                cr.drift_unrepaired,
                cr.foreign_missing,
                cr.faults.targeted_bursts,
                cr.guard_trips,
            );
            // Reconciliation: every injected drift repaired by run end,
            // foreign routes untouched, repairs within bounds.
            assert_eq!(
                cr.drift_unrepaired, 0,
                "rate {rate} {arm}: drift left unrepaired"
            );
            assert_eq!(
                cr.foreign_missing, 0,
                "rate {rate} {arm}: reconciler touched a foreign route"
            );
            if rate > 0.0 {
                assert!(
                    cr.drift_deleted + cr.drift_orphaned > 0,
                    "rate {rate} {arm}: churn injected no agent-facing drift"
                );
                assert!(
                    cr.reconcile_repairs > 0,
                    "rate {rate} {arm}: audits repaired nothing"
                );
            }
        }
        // §IV-D no-harm plumbing: bounds hold in every arm.
        for scenario in [base, base + 1, base + 2] {
            let cr = report.merged_guardrail_report(scenario);
            assert_eq!(cr.invariant_breaches, 0, "scenario {scenario}: bounds gate");
            if let Some((lo, hi)) = cr.installed_range() {
                assert!(
                    lo >= 10 && hi <= 100,
                    "scenario {scenario}: installed range [{lo}, {hi}]"
                );
            }
        }
        if rate > 0.0 {
            let guarded_report = report.merged_guardrail_report(base + 2);
            assert!(
                guarded_report.guard_trips > 0,
                "rate {rate}: targeted loss never tripped the breaker"
            );
            // The closed-loop claim: the breaker strictly reduces the
            // harm the targeted-loss adversary extracts from
            // jump-starting.
            assert!(
                grd_harm < rip_harm,
                "rate {rate}: guarded harm {grd_harm:.1}% not below unguarded {rip_harm:.1}%"
            );
        }
        println!(
            "#   rate {rate}: mean harm vs control — unguarded {rip_harm:+.1}%, \
             guarded {grd_harm:+.1}%"
        );
        summary.push((rate, rip_harm, grd_harm));
    }

    let runs: Vec<String> = summary
        .iter()
        .map(|(rate, rip, grd)| {
            format!(
                "    {{\"rate\": {rate}, \"unguarded_harm_pct\": {rip:.2}, \
                 \"guarded_harm_pct\": {grd:.2}}}"
            )
        })
        .collect();
    let top = report.merged_guardrail_report(3 * (RATES.len() as u32 - 1) + 2);
    let json = format!(
        "{{\n  \"benchmark\": \"guardrail-sweep\",\n  \"sites\": {},\n  \
         \"simulated_secs\": {},\n  \"shards\": {},\n  \
         \"zero_rate_bit_identical\": true,\n  \
         \"drift_unrepaired\": {},\n  \"foreign_touched\": {},\n  \
         \"invariant_breaches\": {},\n  \"guard_trips_top_rate\": {},\n  \
         \"rates\": [\n{}\n  ]\n}}\n",
        opts.scale.sites,
        opts.scale.total().as_secs_f64().round() as u64,
        plan.shards.len(),
        top.drift_unrepaired,
        top.foreign_missing,
        top.invariant_breaches,
        top.guard_trips,
        runs.join(",\n")
    );
    write_bench_json(&opts, "BENCH_guardrail.json", &json);
    print!("{json}");
    println!("# closed loop: breaker + reconciler held every safety invariant at every rate");
}
