//! §V "Kernel Implementation": quantify what moving Riptide into the
//! kernel would buy, exactly along the two axes the paper names —
//! reaction latency (event-driven vs `i_u` polling) and monitoring load
//! (samples on change vs full-table polls).
//!
//! Scenario: a destination's live windows sit at 100, then collapse to
//! 12 (the path degraded). We measure how long each design keeps handing
//! the stale window of 100 to *new* connections, and how many
//! observations each consumed.

use riptide::kernel::KernelAgent;
use riptide::prelude::*;
use riptide_bench::banner;
use riptide_linuxnet::route::RouteTable;
use riptide_simnet::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 7, 1);
// Off the polling grid, as real degradations are.
const COLLAPSE_MS: u64 = 30_500;
const OPEN_CONNS: usize = 40;

fn window_at(t_ms: u64) -> u32 {
    if t_ms < COLLAPSE_MS {
        100
    } else {
        12
    }
}

fn main() {
    banner(
        "Section V (kernel implementation)",
        "reaction latency and monitoring load: userspace polling vs in-kernel events",
    );
    let no_history = RiptideConfig::builder()
        .history(HistoryStrategy::None)
        .build()
        .expect("valid");

    println!(
        "{:>12} {:>14} {:>16} {:>14}",
        "design", "poll_iu", "stale_for_ms", "observations"
    );

    // Userspace designs at several polling intervals.
    for iu_secs in [1u64, 5, 10] {
        let cfg = RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .update_interval(SimDuration::from_secs(iu_secs))
            .build()
            .expect("valid");
        let mut agent = RiptideAgent::new(cfg).expect("valid");
        let mut routes = RouteTable::new();
        let mut observations = 0u64;
        let mut stale_until_ms = None;
        let mut t_ms = 0;
        while t_ms <= 60_000 {
            // One poll: the agent reads every open connection.
            let w = window_at(t_ms);
            observations += OPEN_CONNS as u64;
            let mut obs = FnObserver(|| {
                (0..OPEN_CONNS)
                    .map(|_| CwndObservation {
                        dst: DST,
                        cwnd: w,
                        bytes_acked: 1 << 20,
                        retrans: 0,
                        ecn_marks: 0,
                    })
                    .collect()
            });
            agent.tick(SimTime::from_millis(t_ms), &mut obs, &mut routes);
            if t_ms >= COLLAPSE_MS
                && stale_until_ms.is_none()
                && routes.initcwnd_for(DST) == Some(12)
            {
                stale_until_ms = Some(t_ms);
            }
            t_ms += iu_secs * 1000;
        }
        let stale_for = stale_until_ms.expect("eventually reacts") - COLLAPSE_MS;
        println!(
            "{:>12} {:>13}s {:>16} {:>14}",
            "userspace", iu_secs, stale_for, observations
        );
    }

    // Kernel design: one sample per window *change* event, zero polling.
    let mut kernel = KernelAgent::new(no_history).expect("valid");
    // Two events total: the steady value, then the collapse.
    kernel.on_window_sample(DST, 100, SimTime::from_millis(0));
    kernel.on_window_sample(DST, 12, SimTime::from_millis(COLLAPSE_MS));
    let at_collapse = kernel.initial_cwnd(DST, SimTime::from_millis(COLLAPSE_MS));
    assert_eq!(at_collapse, Some(12), "reflected in the same instant");
    println!(
        "{:>12} {:>14} {:>16} {:>14}",
        "kernel",
        "event-driven",
        0,
        kernel.samples()
    );

    println!("\n# userspace staleness is bounded by i_u; the kernel variant reacts in-event.");
    println!("# monitoring load: polling reads every open connection every i_u regardless of");
    println!("# change; the kernel hook fires only on actual window transitions.");
}
