//! Policy-ablation arena: every registered learning policy races over
//! the seed-paired probe grid, with the run digest pinned so the arena
//! doubles as a behaviour-preservation gate.
//!
//! ```text
//! cargo run --release --bin policy_arena -- [--scale test|quick|paper]
//!     [--seeds N] [--threads N] [--check] [--out PATH]
//! ```
//!
//! * Default mode runs [`RunPlan::policy_ablation`] — a control arm
//!   plus one arm per [`registered_policies`] entry, all seed-paired —
//!   and rewrites `BENCH_policyarena.json` with the per-policy
//!   gain-vs-harm frontier (median completion time per probe size vs
//!   the paired control arm).
//! * `--check` regression mode: re-runs and compares against the
//!   checked-in `BENCH_policyarena.json` instead of rewriting it.
//!   Exits nonzero when the digest differs (behaviour drift in any
//!   policy — always fatal).
//! * In **every** mode the default-EWMA arm must reproduce
//!   [`RunPlan::probe_comparison`]'s control and treatment outcomes
//!   bit for bit — the trait seam must cost nothing — and the run
//!   aborts if it does not.
//!
//! [`registered_policies`]: riptide::policy::registered_policies

use std::process::ExitCode;

use riptide::policy::registered_policies;
use riptide_bench::banner;
use riptide_cdn::engine::RunPlan;
use riptide_cdn::experiment::ExperimentScale;
use riptide_cdn::sim::ProbeOutcome;
use riptide_cdn::stats::Cdf;
use riptide_cdn::workload::ProbeConfig;

const BENCH_FILE: &str = "BENCH_policyarena.json";

struct Options {
    scale_name: String,
    scale: ExperimentScale,
    seeds: u32,
    threads: usize,
    check: bool,
    /// The bench file: read in `--check` mode, rewritten otherwise.
    /// `--out` points smoke runs away from the checked-in baseline.
    out: std::path::PathBuf,
}

fn parse() -> Options {
    let mut opts = Options {
        scale_name: "quick".into(),
        scale: ExperimentScale::quick(),
        seeds: 1,
        threads: 1,
        check: false,
        out: std::path::PathBuf::from(BENCH_FILE),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                opts.scale = match v.as_str() {
                    "test" => ExperimentScale::test(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => panic!("unknown scale {other:?} (test|quick|paper)"),
                };
                opts.scale_name = v;
            }
            "--seeds" => {
                opts.seeds = value("--seeds").parse().expect("--seeds takes a number");
                assert!(opts.seeds >= 1, "--seeds must be at least 1");
            }
            "--threads" => {
                opts.threads = value("--threads")
                    .parse()
                    .expect("--threads takes a number");
                assert!(opts.threads >= 1, "--threads must be at least 1");
            }
            "--check" => opts.check = true,
            "--out" => opts.out = std::path::PathBuf::from(value("--out")),
            "--help" | "-h" => {
                println!(
                    "usage: policy_arena [--scale test|quick|paper] [--seeds N] \
                     [--threads N] [--check] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; try --help"),
        }
    }
    opts
}

/// Pulls `"key": <value>` out of the flat bench JSON (no JSON
/// dependency in the workspace; the keys this reads are top-level and
/// unique, so a string scan suffices).
fn json_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find([',', '\n', '}'])
        .expect("bench JSON values end the line");
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn median_ms(probes: &[ProbeOutcome], size: u64) -> Option<f64> {
    let cdf = Cdf::new(
        probes
            .iter()
            .filter(|p| p.size == size)
            .map(|p| p.completion.as_millis_f64()),
    );
    (!cdf.is_empty()).then(|| cdf.median())
}

/// One arena arm's frontier point: per-size median gains vs the paired
/// control arm, their mean, and the worst (most harmful) size.
struct Frontier {
    arm: String,
    gains_pct: Vec<f64>,
    mean_gain_pct: f64,
    worst_harm_pct: f64,
}

fn frontier(
    arm: &str,
    control: &[ProbeOutcome],
    treated: &[ProbeOutcome],
    sizes: &[u64],
) -> Frontier {
    let mut gains = Vec::new();
    for &size in sizes {
        if let (Some(c), Some(t)) = (median_ms(control, size), median_ms(treated, size)) {
            gains.push((c - t) / c * 100.0);
        }
    }
    let mean = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
    let worst = gains.iter().map(|g| -g).fold(f64::NEG_INFINITY, f64::max);
    Frontier {
        arm: arm.to_string(),
        gains_pct: gains,
        mean_gain_pct: mean,
        worst_harm_pct: worst,
    }
}

fn main() -> ExitCode {
    let opts = parse();
    banner(
        "Policy arena",
        "every registered learning policy over the seed-paired probe grid, digest pinned",
    );
    let plan = RunPlan::policy_ablation(&opts.scale, opts.seeds);
    eprintln!(
        "running {} shards at --scale {} on {} thread(s)...",
        plan.shards.len(),
        opts.scale_name,
        opts.threads
    );
    let report = plan.run_with_threads(opts.threads);
    let digest_fnv = format!("{:016x}", report.digest_fnv64());

    // The trait seam must cost nothing: the arena's control and
    // default-EWMA arms (scenarios 0 and 1) must reproduce the plain
    // probe comparison outcome for outcome, every run, every mode.
    let baseline =
        RunPlan::probe_comparison(&opts.scale, opts.seeds).run_with_threads(opts.threads);
    assert_eq!(
        report.merged_probes(0),
        baseline.merged_probes(0),
        "arena control arm diverged from probe_comparison"
    );
    assert_eq!(
        report.merged_probes(1),
        baseline.merged_probes(1),
        "arena default-EWMA arm diverged from probe_comparison"
    );
    println!("# ewma arm bit-identical to the probe comparison");

    // Per-policy gain-vs-harm frontier against the paired control arm.
    let sizes = ProbeConfig::default().sizes;
    let control = report.merged_probes(0);
    let mut arms = vec!["control".to_string()];
    arms.extend(
        registered_policies()
            .iter()
            .map(|(name, _)| if *name == "ewma" { "riptide" } else { name }.to_string()),
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>11} {:>11}",
        "policy", "g10k_%", "g50k_%", "g100k_%", "mean_gain%", "worst_harm%"
    );
    let mut frontiers = Vec::new();
    for (s, arm) in arms.iter().enumerate().skip(1) {
        let treated = report.merged_probes(s as u32);
        let f = frontier(arm, &control, &treated, &sizes);
        println!(
            "{:>14} {:>10.1} {:>10.1} {:>10.1} {:>11.1} {:>11.1}",
            f.arm,
            f.gains_pct.first().copied().unwrap_or(f64::NAN),
            f.gains_pct.get(1).copied().unwrap_or(f64::NAN),
            f.gains_pct.get(2).copied().unwrap_or(f64::NAN),
            f.mean_gain_pct,
            f.worst_harm_pct,
        );
        frontiers.push(f);
    }

    if opts.check {
        let text = match std::fs::read_to_string(&opts.out) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("policy_arena: cannot read {}: {e}", opts.out.display());
                return ExitCode::FAILURE;
            }
        };
        let want_scale = json_field(&text, "scale").unwrap_or_default();
        if want_scale != opts.scale_name {
            eprintln!(
                "policy_arena: {} was recorded at --scale {want_scale}, \
                 this run used --scale {}",
                opts.out.display(),
                opts.scale_name
            );
            return ExitCode::FAILURE;
        }
        let want_digest = json_field(&text, "digest_fnv").unwrap_or_default();
        if want_digest != digest_fnv {
            eprintln!(
                "policy_arena: DIGEST DRIFT — baseline {want_digest}, got {digest_fnv}; \
                 some policy's observable behaviour changed"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "# check: digest ok ({digest_fnv}), {} policy arms",
            frontiers.len()
        );
        return ExitCode::SUCCESS;
    }

    let rows: Vec<String> = frontiers
        .iter()
        .map(|f| {
            let gains: Vec<String> = f.gains_pct.iter().map(|g| format!("{g:.2}")).collect();
            format!(
                "    {{\"policy\": \"{}\", \"gain_pct_by_size\": [{}], \
                 \"mean_gain_pct\": {:.2}, \"worst_harm_pct\": {:.2}}}",
                f.arm,
                gains.join(", "),
                f.mean_gain_pct,
                f.worst_harm_pct
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"policy-arena\",\n  \"scale\": \"{}\",\n  \
         \"seeds\": {},\n  \"shards\": {},\n  \
         \"ewma_bit_identical\": true,\n  \"digest_fnv\": \"{}\",\n  \
         \"probe_sizes\": [{}],\n  \"policies\": [\n{}\n  ]\n}}\n",
        opts.scale_name,
        opts.seeds,
        plan.shards.len(),
        digest_fnv,
        sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        rows.join(",\n")
    );
    std::fs::write(&opts.out, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", opts.out.display()));
    print!("{json}");
    println!(
        "# frontier recorded for {} policies; digest {digest_fnv}",
        frontiers.len()
    );
    ExitCode::SUCCESS
}
