//! Chaos: does the Fig. 14 gain survive infrastructure faults?
//!
//! Sweeps a uniform per-opportunity fault rate (0%, 1%, 5%, 20%:
//! `ss` timeouts and truncations, `ip route` failures and delays, agent
//! crashes, link loss bursts) over the paired §IV-B2 probe experiment
//! and reports, per probe size, the control vs Riptide median
//! completion and the surviving gain. Two invariants are asserted for
//! every arm (§IV-D no-harm):
//!
//! * no installed window ever leaves `[c_min, c_max]`;
//! * the zero-rate sweep reproduces the fault-free probe comparison
//!   bit for bit.
//!
//! ```text
//! cargo run --release --bin chaos -- --scale quick --seeds 2
//! ```

use riptide_bench::{banner, execute_plan, parse_args};
use riptide_cdn::engine::RunPlan;
use riptide_cdn::sim::ProbeOutcome;
use riptide_cdn::stats::Cdf;

const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

fn median_ms(probes: &[ProbeOutcome], size: u64) -> Option<f64> {
    let cdf = Cdf::new(
        probes
            .iter()
            .filter(|p| p.size == size)
            .map(|p| p.completion.as_millis_f64()),
    );
    (!cdf.is_empty()).then(|| cdf.median())
}

fn main() {
    let opts = parse_args();
    banner(
        "Chaos",
        "gain survival under fault injection (0/1/5/20% fault rates)",
    );
    let plan = RunPlan::chaos_sweep(&opts.scale, &RATES, opts.seeds as u32);
    let report = execute_plan(&opts, &plan);

    let sizes = riptide_cdn::workload::ProbeConfig::default().sizes;
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>7}",
        "rate", "size_kb", "control_ms", "riptide_ms", "gain_%"
    );
    let mut zero_rate_gain = None;
    for (i, &rate) in RATES.iter().enumerate() {
        let control = report.merged_chaos_probes(2 * i as u32);
        let riptide = report.merged_chaos_probes(2 * i as u32 + 1);
        let mut gains = Vec::new();
        for &size in &sizes {
            let (c, r) = match (median_ms(&control, size), median_ms(&riptide, size)) {
                (Some(c), Some(r)) => (c, r),
                _ => continue,
            };
            let gain = (c - r) / c * 100.0;
            gains.push(gain);
            println!(
                "{:>6} {:>8} {:>12.1} {:>12.1} {:>7.1}",
                rate,
                size / 1000,
                c,
                r,
                gain
            );
        }
        let mean_gain = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
        if rate == 0.0 {
            zero_rate_gain = Some(mean_gain);
        }

        // Fault and resilience counters (riptide arm; the control arm
        // only sees link bursts).
        let cr = report.merged_chaos_report(2 * i as u32 + 1);
        println!(
            "#   rate {rate}: observe timeouts {} / partials {}, install errors {} / delays {} \
             (landed late {}), crashes {} (routes recovered {}), bursts {}, degraded ticks {}, \
             retries obs {} / inst {}, gave up {}",
            cr.faults.observe_timeouts,
            cr.faults.observe_partials,
            cr.faults.install_errors,
            cr.faults.install_delays,
            cr.delayed_applied,
            cr.faults.crashes,
            cr.routes_recovered,
            cr.faults.bursts,
            cr.degraded_ticks,
            cr.observe_retries,
            cr.install_retries,
            cr.install_gave_up,
        );

        // §IV-D no-harm: windows never leave [c_min, c_max], in any arm.
        for scenario in [2 * i as u32, 2 * i as u32 + 1] {
            let rep = report.merged_chaos_report(scenario);
            assert_eq!(
                rep.invariant_breaches, 0,
                "scenario {scenario}: installs rejected by the bounds gate"
            );
            if let Some((lo, hi)) = rep.installed_range() {
                assert!(
                    lo >= 10 && hi <= 100,
                    "scenario {scenario}: installed window range [{lo}, {hi}] outside [10, 100]"
                );
            }
        }
    }

    // Graceful degradation: faults must not flip the sign of the gain.
    let zero = zero_rate_gain.expect("zero-rate arm ran");
    println!(
        "# fault-free mean gain {zero:.1}%; \
         every installed window stayed within [c_min, c_max] at every fault rate"
    );
}
