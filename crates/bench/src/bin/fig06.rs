//! Figure 6: total transfer time for a 100 KB file over the Fig. 5 RTT
//! distribution, for initial windows 10, 25, 50 and 100 (model).

use riptide::model::{transfer_time, DEFAULT_MSS};
use riptide_bench::{banner, parse_args, print_cdf_series, print_cdf_summary};
use riptide_cdn::geo::all_pair_rtts;
use riptide_cdn::stats::Cdf;

fn main() {
    let opts = parse_args();
    banner(
        "Figure 6",
        "modelled transfer time of a 100 KB file over the inter-PoP RTT distribution",
    );
    let rtts = all_pair_rtts();
    let windows = [10u32, 25, 50, 100];
    let mut cdfs = Vec::new();
    println!("{:>16} {:>12} {:>7}", "series", "time_ms", "cdf");
    for &iw in &windows {
        let cdf = Cdf::new(
            rtts.iter()
                .map(|&rtt| transfer_time(100_000, DEFAULT_MSS, iw, rtt, false).as_millis_f64()),
        );
        print_cdf_series(&format!("iw{iw}"), &cdf, opts.points);
        cdfs.push((iw, cdf));
    }
    println!();
    for (iw, cdf) in &cdfs {
        print_cdf_summary(&format!("iw{iw}"), cdf);
    }
    let d_median = cdfs[0].1.median() - cdfs[3].1.median();
    let d_p90 = cdfs[0].1.quantile(0.9) - cdfs[3].1.quantile(0.9);
    println!("\n# paper: median penalty of iw10 vs iw100 over 280 ms; ~290 ms (~100%) at p90");
    println!(
        "# measured: median difference {:.0} ms; p90 difference {:.0} ms ({:.0}%)",
        d_median,
        d_p90,
        d_p90 / cdfs[3].1.quantile(0.9) * 100.0
    );
}
