//! Figure 15: fraction of gain by percentile for the European and North
//! American sender PoPs, 50 KB probes — flat through ~p50–p60, then
//! gains up to 30% (EU) / 21% (NA).

use riptide_bench::{parse_args, run_gain_figure};

fn main() {
    let opts = parse_args();
    run_gain_figure(
        &opts,
        50_000,
        "Figure 15",
        "50KB probes: p5–p60 nearly unchanged; upper percentiles gain up to 30% (EU) / 21% (NA)",
    );
}
