//! Simulator hot-path benchmark: events/sec and wall-clock for the
//! fixed probe-comparison plan, with the run digest pinned so a perf
//! run doubles as a behaviour-preservation check.
//!
//! ```text
//! cargo run --release --bin simperf -- [--scale test|quick|paper]
//!     [--seeds N] [--threads N] [--record-seed] [--check] [--out PATH]
//! ```
//!
//! * Default mode measures the plan **serially** (stable events/sec,
//!   no pool scheduling noise), carries any previously recorded seed
//!   baseline forward, and rewrites `BENCH_simperf.json`.
//! * `--record-seed` additionally stamps this run's numbers as the
//!   `seed_*` baseline — run once on the pre-optimisation tree.
//! * `--check` regression mode: re-measures and compares against the
//!   checked-in `BENCH_simperf.json` instead of rewriting it. Exits
//!   nonzero when the digest differs (behaviour drift — always fatal)
//!   or when events/sec regresses more than 20%.

use std::process::ExitCode;
use std::time::Instant;

use riptide_bench::banner;
use riptide_cdn::engine::RunPlan;
use riptide_cdn::experiment::ExperimentScale;

const BENCH_FILE: &str = "BENCH_simperf.json";
/// A `--check` run fails when events/sec drops below this fraction of
/// the recorded baseline.
const REGRESSION_FLOOR: f64 = 0.8;

struct Options {
    scale_name: String,
    scale: ExperimentScale,
    seeds: u32,
    threads: usize,
    record_seed: bool,
    check: bool,
    /// The bench file: read in `--check` mode, rewritten otherwise.
    /// `--out` points smoke runs away from the checked-in baseline.
    out: std::path::PathBuf,
}

fn parse() -> Options {
    let mut opts = Options {
        scale_name: "quick".into(),
        scale: ExperimentScale::quick(),
        seeds: 1,
        threads: 1,
        record_seed: false,
        check: false,
        out: std::path::PathBuf::from(BENCH_FILE),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                opts.scale = match v.as_str() {
                    "test" => ExperimentScale::test(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => panic!("unknown scale {other:?} (test|quick|paper)"),
                };
                opts.scale_name = v;
            }
            "--seeds" => {
                opts.seeds = value("--seeds").parse().expect("--seeds takes a number");
                assert!(opts.seeds >= 1, "--seeds must be at least 1");
            }
            "--threads" => {
                opts.threads = value("--threads")
                    .parse()
                    .expect("--threads takes a number");
                assert!(opts.threads >= 1, "--threads must be at least 1");
            }
            "--record-seed" => opts.record_seed = true,
            "--check" => opts.check = true,
            "--out" => opts.out = std::path::PathBuf::from(value("--out")),
            "--help" | "-h" => {
                println!(
                    "usage: simperf [--scale test|quick|paper] [--seeds N] \
                     [--threads N] [--record-seed] [--check] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; try --help"),
        }
    }
    opts
}

/// Pulls `"key": <value>` out of the flat bench JSON (no nested objects,
/// so a string scan suffices — the workspace has no JSON dependency).
fn json_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find([',', '\n', '}'])
        .expect("bench JSON values end the line");
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn main() -> ExitCode {
    let opts = parse();
    banner(
        "Simulator hot path",
        "events/sec and wall-clock for the probe-comparison plan, digest pinned",
    );
    let plan = RunPlan::probe_comparison(&opts.scale, opts.seeds);
    eprintln!(
        "running {} shards at --scale {} on {} thread(s)...",
        plan.shards.len(),
        opts.scale_name,
        opts.threads
    );
    let started = Instant::now();
    let report = plan.run_with_threads(opts.threads);
    let wall_ms = started.elapsed().as_millis().max(1) as u64;
    let events = report.total_events();
    let events_per_sec = events as f64 * 1000.0 / wall_ms as f64;
    let digest_fnv = format!("{:016x}", report.digest_fnv64());

    if opts.check {
        let text = match std::fs::read_to_string(&opts.out) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("simperf: cannot read {}: {e}", opts.out.display());
                return ExitCode::FAILURE;
            }
        };
        let want_scale = json_field(&text, "scale").unwrap_or_default();
        if want_scale != opts.scale_name {
            eprintln!(
                "simperf: {} was recorded at --scale {want_scale}, \
                 this run used --scale {}",
                opts.out.display(),
                opts.scale_name
            );
            return ExitCode::FAILURE;
        }
        let want_digest = json_field(&text, "digest_fnv").unwrap_or_default();
        if want_digest != digest_fnv {
            eprintln!(
                "simperf: DIGEST DRIFT — baseline {want_digest}, got {digest_fnv}; \
                 the simulator's observable behaviour changed"
            );
            return ExitCode::FAILURE;
        }
        let baseline_eps: f64 = json_field(&text, "events_per_sec")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        println!(
            "# check: digest ok; {events_per_sec:.0} events/sec vs baseline \
             {baseline_eps:.0} ({:.0}% floor)",
            REGRESSION_FLOOR * 100.0
        );
        if baseline_eps > 0.0 && events_per_sec < REGRESSION_FLOOR * baseline_eps {
            eprintln!(
                "simperf: events/sec regressed more than {:.0}%: {events_per_sec:.0} \
                 vs baseline {baseline_eps:.0}",
                (1.0 - REGRESSION_FLOOR) * 100.0
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // Carry the recorded pre-optimisation baseline forward (or stamp it
    // from this run under --record-seed).
    let existing = std::fs::read_to_string(&opts.out).unwrap_or_default();
    let (seed_wall_ms, seed_eps) = if opts.record_seed {
        (wall_ms, events_per_sec)
    } else {
        (
            json_field(&existing, "seed_wall_ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(wall_ms),
            json_field(&existing, "seed_events_per_sec")
                .and_then(|v| v.parse().ok())
                .unwrap_or(events_per_sec),
        )
    };
    let speedup = seed_wall_ms as f64 / wall_ms as f64;

    let json = format!(
        "{{\n  \"benchmark\": \"simperf-probe-comparison\",\n  \
         \"scale\": \"{}\",\n  \"shards\": {},\n  \"threads\": {},\n  \
         \"events\": {},\n  \"wall_ms\": {},\n  \"events_per_sec\": {:.0},\n  \
         \"digest_fnv\": \"{}\",\n  \"seed_wall_ms\": {},\n  \
         \"seed_events_per_sec\": {:.0},\n  \"speedup_vs_seed\": {:.2}\n}}\n",
        opts.scale_name,
        plan.shards.len(),
        opts.threads,
        events,
        wall_ms,
        events_per_sec,
        digest_fnv,
        seed_wall_ms,
        seed_eps,
        speedup
    );
    std::fs::write(&opts.out, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", opts.out.display()));
    print!("{json}");
    println!(
        "# {events} events in {wall_ms} ms = {events_per_sec:.0} events/sec \
         ({speedup:.2}x vs recorded seed baseline); digest {digest_fnv}"
    );
    ExitCode::SUCCESS
}
