//! Cold-start ramp-up: how fast a crash-restarted PoP agent climbs back
//! to 90% of its pre-crash installed-window mass, with durability off
//! (relearn from scratch), local snapshot+journal restore, and
//! snapshot+gossip anti-entropy fleet sync.
//!
//! Sweeps machine-crash rates over the three-arm §IV-B2 probe setup
//! ([`RunPlan::coldstart_sweep`]) — all arms seed-paired, so every mode
//! sees the *same* crash schedule — and reports per rate the tracked
//! restarts, recoveries and mean ramp seconds of each mode. Asserts the
//! durability claims:
//!
//! * at a zero crash rate the persistence-off arm reproduces the
//!   fault-free Riptide probe arm bit for bit, and the snapshot arm's
//!   probes are identical to the persistence-off arm's (journalling and
//!   snapshotting are pure bookkeeping until a crash consumes them);
//! * under crashes the snapshot arms restore routes and ramp back
//!   measurably faster than relearning cold.
//!
//! Writes a machine-readable summary to `BENCH_coldstart.json`.
//!
//! ```text
//! cargo run --release --bin coldstart -- [--scale test|quick|paper]
//!     [--seeds N] [--threads N] [--check] [--out PATH]
//! ```
//!
//! * Default mode runs the sweep and rewrites `BENCH_coldstart.json`.
//! * `--check` regression mode for CI: re-runs the sweep, compares the
//!   run digest against the recorded baseline (**drift is fatal**), and
//!   fails unless both warm arms beat the cold arm's mean ramp at the
//!   top crash rate by at least [`FLOOR_IMPROVEMENT`].

use std::process::ExitCode;

use riptide_bench::banner;
use riptide_cdn::engine::{RunPlan, RunReport};
use riptide_cdn::experiment::ExperimentScale;
use riptide_cdn::sim::ColdstartReport;

const BENCH_FILE: &str = "BENCH_coldstart.json";
/// Crash rates swept; the last entry is the rate `--check` gates on.
const RATES: [f64; 2] = [0.0, 0.05];
/// Minimum cold-over-warm mean-ramp ratio `--check` demands of both
/// warm arms at the top crash rate. A restored table is live the tick
/// the agent comes back, so in practice the ratio is far larger.
const FLOOR_IMPROVEMENT: f64 = 1.5;

const MODES: [&str; 3] = ["cold", "snapshot", "snapshot+gossip"];

struct Options {
    scale_name: String,
    scale: ExperimentScale,
    seeds: u32,
    threads: Option<usize>,
    check: bool,
    /// The bench file: read in `--check` mode, rewritten otherwise.
    out: std::path::PathBuf,
}

fn parse() -> Options {
    let mut opts = Options {
        scale_name: "test".into(),
        scale: ExperimentScale::test(),
        seeds: 2,
        threads: None,
        check: false,
        out: std::path::PathBuf::from(BENCH_FILE),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                opts.scale = match v.as_str() {
                    "test" => ExperimentScale::test(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => panic!("unknown scale {other:?} (test|quick|paper)"),
                };
                opts.scale_name = v;
            }
            "--seeds" => {
                opts.seeds = value("--seeds").parse().expect("--seeds takes a number");
                assert!(opts.seeds >= 1, "--seeds must be at least 1");
            }
            "--threads" => {
                let n: usize = value("--threads")
                    .parse()
                    .expect("--threads takes a number");
                assert!(n >= 1, "--threads must be at least 1");
                opts.threads = Some(n);
            }
            "--check" => opts.check = true,
            "--out" => opts.out = std::path::PathBuf::from(value("--out")),
            "--help" | "-h" => {
                println!(
                    "usage: coldstart [--scale test|quick|paper] [--seeds N] \
                     [--threads N] [--check] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; try --help"),
        }
    }
    opts
}

fn run(opts: &Options, plan: &RunPlan) -> RunReport {
    let threads = opts
        .threads
        .unwrap_or_else(riptide_cdn::engine::default_threads);
    eprintln!(
        "running {} ({} shards) on {} thread(s)...",
        plan.name,
        plan.shards.len(),
        threads
    );
    plan.run_with_threads(threads)
}

/// The three per-mode merged reports of one crash-rate index.
fn mode_reports(report: &RunReport, rate_idx: usize) -> [ColdstartReport; 3] {
    let base = 3 * rate_idx as u32;
    [
        report.merged_coldstart_report(base),
        report.merged_coldstart_report(base + 1),
        report.merged_coldstart_report(base + 2),
    ]
}

/// Mean ramp seconds, or `-1` when the arm never completed a ramp —
/// bench JSON stays one scalar per field for the flat scanner.
fn ramp_or_neg(r: &ColdstartReport) -> f64 {
    r.mean_ramp_secs().unwrap_or(-1.0)
}

/// Gate one warm arm against the cold arm at the top rate: pass when
/// the cold arm never recovered at all (a warm recovery beats an
/// unfinished cold ramp outright), else demand the mean-ramp ratio.
fn warm_beats_cold(cold: &ColdstartReport, warm: &ColdstartReport, arm: &str) -> bool {
    let Some(warm_mean) = warm.mean_ramp_secs() else {
        eprintln!("coldstart: {arm} arm completed no ramp — nothing to gate");
        return false;
    };
    match cold.mean_ramp_secs() {
        None => {
            assert!(
                cold.unrecovered > 0,
                "cold arm has no ramps at a positive crash rate"
            );
            true
        }
        Some(cold_mean) => {
            let ratio = cold_mean / warm_mean.max(1e-9);
            if ratio < FLOOR_IMPROVEMENT {
                eprintln!(
                    "coldstart: RAMP REGRESSION — {arm} arm ramps {warm_mean:.2}s vs cold \
                     {cold_mean:.2}s ({ratio:.2}x, floor {FLOOR_IMPROVEMENT:.1}x)"
                );
                return false;
            }
            true
        }
    }
}

/// Same flat-JSON field scan as `simperf`/`shardscale` (the workspace
/// has no JSON dependency; bench files keep one scalar per line above
/// the per-rate rows).
fn json_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find([',', '\n', '}'])
        .expect("bench JSON values end the line");
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn check(opts: &Options, plan: &RunPlan) -> ExitCode {
    let text = match std::fs::read_to_string(&opts.out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("coldstart: cannot read {}: {e}", opts.out.display());
            return ExitCode::FAILURE;
        }
    };
    for (key, got) in [
        ("scale", opts.scale_name.as_str()),
        ("seeds", &opts.seeds.to_string()),
    ] {
        let want = json_field(&text, key).unwrap_or_default();
        if want != got {
            eprintln!(
                "coldstart: {} was recorded at --{key} {want}, this run used --{key} {got}",
                opts.out.display()
            );
            return ExitCode::FAILURE;
        }
    }

    let report = run(opts, plan);
    let digest = format!("{:016x}", report.digest_fnv64());
    let want_digest = json_field(&text, "digest_fnv").unwrap_or_default();
    if want_digest != digest {
        eprintln!(
            "coldstart: DIGEST DRIFT — baseline {want_digest}, got {digest}; \
             the sweep's observable behaviour changed"
        );
        return ExitCode::FAILURE;
    }

    let top = RATES.len() - 1;
    let [cold, snap, gossip] = mode_reports(&report, top);
    for (arm, r) in MODES.iter().zip([&cold, &snap, &gossip]) {
        if r.restarts_tracked == 0 {
            eprintln!(
                "coldstart: {arm} arm tracked no restarts at rate {} — the \
                 crash schedule went missing",
                RATES[top]
            );
            return ExitCode::FAILURE;
        }
    }
    if !warm_beats_cold(&cold, &snap, "snapshot")
        || !warm_beats_cold(&cold, &gossip, "snapshot+gossip")
    {
        return ExitCode::FAILURE;
    }
    println!(
        "# check: digest identical; snapshot ramps {:.2}s, snapshot+gossip {:.2}s \
         vs cold {} at rate {} (floor {FLOOR_IMPROVEMENT:.1}x)",
        ramp_or_neg(&snap),
        ramp_or_neg(&gossip),
        cold.mean_ramp_secs()
            .map_or("unrecovered".into(), |s| format!("{s:.2}s")),
        RATES[top]
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse();
    banner(
        "Cold start",
        "restart ramp-up with persistence off / snapshot / snapshot+gossip",
    );
    let plan = RunPlan::coldstart_sweep(&opts.scale, &RATES, opts.seeds);
    if opts.check {
        return check(&opts, &plan);
    }

    let report = run(&opts, &plan);

    // Digest-neutrality gate: at a zero crash rate the persistence-off
    // arm must be bit-identical to the fault-free Riptide probe arm,
    // and the snapshot arm must probe identically to it — durability is
    // pure bookkeeping until a crash consumes it. (Gossip legitimately
    // differs: merged entries jump-start connections.)
    let baseline = run(&opts, &RunPlan::probe_comparison(&opts.scale, opts.seeds));
    assert_eq!(
        report.merged_coldstart_probes(0),
        baseline.merged_probes(1),
        "zero-rate cold arm diverged from the fault-free probe comparison"
    );
    assert_eq!(
        report.merged_coldstart_probes(1),
        report.merged_coldstart_probes(0),
        "snapshot bookkeeping changed probe outcomes without any crash"
    );
    println!("# zero-rate cold arm bit-identical to the fault-free probe comparison");
    println!("# zero-rate snapshot arm probes identical to the cold arm");

    println!(
        "{:>6} {:>16} {:>9} {:>11} {:>11} {:>10} {:>10} {:>9}",
        "rate", "mode", "restarts", "recoveries", "mean_ramp_s", "restored", "snapshots", "journal"
    );
    let mut rows = Vec::new();
    for (i, &rate) in RATES.iter().enumerate() {
        let reports = mode_reports(&report, i);
        for (mode, r) in MODES.iter().zip(&reports) {
            println!(
                "{:>6} {:>16} {:>9} {:>11} {:>11} {:>10} {:>10} {:>9}",
                rate,
                mode,
                r.restarts_tracked,
                r.recoveries,
                r.mean_ramp_secs().map_or("-".into(), |s| format!("{s:.2}")),
                r.restored_routes,
                r.snapshots_written,
                r.journal_records,
            );
        }
        let [cold, snap, gossip] = &reports;
        if rate > 0.0 {
            println!(
                "#   rate {rate}: gossip rounds {} / pairs {} / shipped {} / accepted {} / \
                 digests matched {} / backoffs {}",
                gossip.gossip_rounds,
                gossip.gossip_pairs,
                gossip.entries_shipped,
                gossip.entries_accepted,
                gossip.digests_matched,
                gossip.gossip_backoff_skips,
            );
            assert!(
                warm_beats_cold(cold, snap, "snapshot")
                    && warm_beats_cold(cold, gossip, "snapshot+gossip"),
                "rate {rate}: a warm arm failed the {FLOOR_IMPROVEMENT:.1}x ramp floor"
            );
        }
        rows.push(format!(
            "    {{\"rate\": {rate}, \"cold_ramp_s\": {:.3}, \"snapshot_ramp_s\": {:.3}, \
             \"gossip_ramp_s\": {:.3}, \"cold_unrecovered\": {}, \"restored_routes\": {}, \
             \"entries_accepted\": {}}}",
            ramp_or_neg(cold),
            ramp_or_neg(snap),
            ramp_or_neg(gossip),
            cold.unrecovered,
            snap.restored_routes + gossip.restored_routes,
            gossip.entries_accepted,
        ));
    }

    let [cold, snap, gossip] = mode_reports(&report, RATES.len() - 1);
    let json = format!(
        "{{\n  \"benchmark\": \"coldstart-sweep\",\n  \"scale\": \"{}\",\n  \
         \"seeds\": {},\n  \"sites\": {},\n  \"simulated_secs\": {},\n  \
         \"shards\": {},\n  \"digest_fnv\": \"{:016x}\",\n  \
         \"floor_improvement\": {:.1},\n  \"zero_rate_bit_identical\": true,\n  \
         \"top_rate_restarts\": {},\n  \"rates\": [\n{}\n  ]\n}}\n",
        opts.scale_name,
        opts.seeds,
        opts.scale.sites,
        opts.scale.total().as_secs_f64().round() as u64,
        plan.shards.len(),
        report.digest_fnv64(),
        FLOOR_IMPROVEMENT,
        cold.restarts_tracked + snap.restarts_tracked + gossip.restarts_tracked,
        rows.join(",\n")
    );
    std::fs::write(&opts.out, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", opts.out.display()));
    print!("{json}");
    println!("# warm arms beat the cold ramp at every positive rate");
    ExitCode::SUCCESS
}
