//! Figure 2: distribution of file sizes in a production CDN network.
//!
//! Prints the fitted lognormal's theoretical CDF alongside an empirical
//! CDF of drawn samples, plus the headline claim: 54% of files exceed the
//! capacity of the default 10-segment initial window.

use riptide_bench::{banner, log_spaced_sizes, parse_args};
use riptide_cdn::workload::FileSizeDist;
use riptide_simnet::rng::DetRng;

fn main() {
    let opts = parse_args();
    banner("Figure 2", "file size distribution of a production CDN");
    let dist = FileSizeDist::fig2();
    let mut rng = DetRng::from_seed(opts.scale.seed);
    let n = 200_000;
    let mut samples: Vec<u64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    samples.sort_unstable();

    println!("{:>12} {:>12} {:>12}", "bytes", "cdf_theory", "cdf_sampled");
    for size in log_spaced_sizes(200, 10_000_000, opts.points) {
        let theory = dist.cdf(size);
        let empirical = samples.partition_point(|&s| s <= size) as f64 / n as f64;
        println!("{size:>12} {theory:>12.4} {empirical:>12.4}");
    }

    let over_15k = 1.0 - dist.cdf(15_000);
    println!("\n# paper: 54% of files are too large for the default window of 10");
    println!("# measured: {:.1}% of files exceed 15 KB", over_15k * 100.0);
}
