//! Figure 13: CDF of probe completion time for 50 KB probes, grouped by
//! destination RTT — Riptide flows pull ahead, completing whole RTTs
//! sooner (the stair-step pattern), more so for farther destinations.

use riptide_bench::{parse_args, run_probe_time_figure};

fn main() {
    let opts = parse_args();
    run_probe_time_figure(
        &opts,
        50_000,
        "Figure 13",
        "50KB probes: transfer times decrease for ~30% of connections; \
         gaps widen with destination RTT",
    );
}
