//! Quality ablations over the design choices DESIGN.md calls out:
//! combine strategy (average / max / traffic-weighted), history (EWMA α
//! sweep / none / windowed), destination granularity (host vs /24
//! prefix), TTL, and `tcp_slow_start_after_idle`.
//!
//! Every variant runs as seed-paired shards on the parallel engine
//! (one shard per variant × sender × replicate), and the harness
//! reports the median and p90 completion of 100 KB probes, next to the
//! control (no Riptide) and the deployed configuration.

use riptide::prelude::*;
use riptide_bench::{banner, execute_plan, parse_args};
use riptide_cdn::engine::{ProbeVariant, RunPlan};
use riptide_cdn::experiment::{probe_sender_sites, StackTweaks};
use riptide_cdn::stats::Cdf;
use riptide_simnet::time::SimDuration;

fn completion_cdf(outcomes: &[riptide_cdn::sim::ProbeOutcome], sender: usize, size: u64) -> Cdf {
    Cdf::new(
        outcomes
            .iter()
            .filter(|p| p.src_site == sender && p.size == size)
            .map(|p| p.completion.as_millis_f64()),
    )
}

fn main() {
    let opts = parse_args();
    banner(
        "Ablations",
        "100 KB probe completion under §III-B design alternatives",
    );
    let sender = probe_sender_sites(&opts.scale)[0];

    let ssai = StackTweaks {
        slow_start_after_idle: true,
        ..StackTweaks::default()
    };
    let delack = StackTweaks {
        delayed_ack: true,
        ..StackTweaks::default()
    };
    let no_metrics = StackTweaks {
        no_metrics_cache: true,
        ..StackTweaks::default()
    };
    let plain = StackTweaks::default();
    let variants: Vec<(String, Option<RiptideConfig>, StackTweaks)> = vec![
        ("control".into(), None, plain),
        (
            "deployed(avg,ewma0.7,host)".into(),
            Some(RiptideConfig::deployment()),
            plain,
        ),
        (
            "combine=max".into(),
            Some(
                RiptideConfig::builder()
                    .combine(CombineStrategy::Max)
                    .build()
                    .unwrap(),
            ),
            plain,
        ),
        (
            "combine=traffic-weighted".into(),
            Some(
                RiptideConfig::builder()
                    .combine(CombineStrategy::TrafficWeighted)
                    .build()
                    .unwrap(),
            ),
            plain,
        ),
        (
            "history=none".into(),
            Some(
                RiptideConfig::builder()
                    .history(HistoryStrategy::None)
                    .build()
                    .unwrap(),
            ),
            plain,
        ),
        (
            "history=windowed8".into(),
            Some(
                RiptideConfig::builder()
                    .history(HistoryStrategy::WindowedMean { window: 8 })
                    .build()
                    .unwrap(),
            ),
            plain,
        ),
        (
            "alpha=0.3".into(),
            Some(RiptideConfig::builder().alpha(0.3).build().unwrap()),
            plain,
        ),
        (
            "alpha=0.95".into(),
            Some(RiptideConfig::builder().alpha(0.95).build().unwrap()),
            plain,
        ),
        (
            "granularity=/24".into(),
            Some(
                RiptideConfig::builder()
                    .granularity(Granularity::Prefix(24))
                    .build()
                    .unwrap(),
            ),
            plain,
        ),
        (
            "ttl=10s".into(),
            Some(
                RiptideConfig::builder()
                    .ttl(SimDuration::from_secs(10))
                    .build()
                    .unwrap(),
            ),
            plain,
        ),
        ("ssai=on,control".into(), None, ssai),
        (
            "ssai=on,deployed".into(),
            Some(RiptideConfig::deployment()),
            ssai,
        ),
        ("delack=on,control".into(), None, delack),
        (
            "delack=on,deployed".into(),
            Some(RiptideConfig::deployment()),
            delack,
        ),
        ("no-tcp-metrics,control".into(), None, no_metrics),
        (
            "no-tcp-metrics,deployed".into(),
            Some(RiptideConfig::deployment()),
            no_metrics,
        ),
        (
            "sack=on,control".into(),
            None,
            StackTweaks {
                sack: true,
                ..StackTweaks::default()
            },
        ),
        (
            "sack=on,deployed".into(),
            Some(RiptideConfig::deployment()),
            StackTweaks {
                sack: true,
                ..StackTweaks::default()
            },
        ),
        // §III-C: without raising initrwnd alongside c_max, the boosted
        // first burst stalls on flow control and the gains evaporate.
        (
            "initrwnd=10,deployed".into(),
            Some(RiptideConfig::deployment()),
            StackTweaks {
                initial_rwnd: Some(10),
                ..StackTweaks::default()
            },
        ),
    ];

    let labels: Vec<String> = variants.iter().map(|(l, _, _)| l.clone()).collect();
    let plan = RunPlan::probe_variants(
        &opts.scale,
        variants
            .into_iter()
            .map(|(name, riptide, tweaks)| ProbeVariant {
                name,
                riptide,
                tweaks,
            })
            .collect(),
        opts.seeds as u32,
    );
    let report = execute_plan(&opts, &plan);

    println!(
        "{:>28} {:>8} {:>10} {:>10} {:>10}",
        "variant", "n", "p50_ms", "p90_ms", "vs_ctl_%"
    );
    let mut control_median = None;
    for (scenario, label) in labels.iter().enumerate() {
        let outcomes = report.merged_probes(scenario as u32);
        let cdf = completion_cdf(&outcomes, sender, 100_000);
        if cdf.is_empty() {
            println!("{label:>28}  (no samples)");
            continue;
        }
        let p50 = cdf.median();
        if label == "control" {
            control_median = Some(p50);
        }
        let vs = control_median.map(|c| (c - p50) / c * 100.0).unwrap_or(0.0);
        println!(
            "{:>28} {:>8} {:>10.1} {:>10.1} {:>10.1}",
            label,
            cdf.len(),
            p50,
            cdf.quantile(0.9),
            vs
        );
    }
    println!("\n# positive vs_ctl_% = faster than the no-Riptide control");
}
