//! Telemetry smoke benchmark: runs one probe-comparison plan with the
//! metrics bundle attached and checks the observability layer's three
//! load-bearing claims end to end —
//!
//! 1. the merged snapshot is thread-count invariant,
//! 2. key counters actually moved (the bundle is wired, not decorative),
//! 3. telemetry is zero-overhead: stripping the `metrics=` tokens from
//!    the instrumented digest recovers the uninstrumented digest byte
//!    for byte.
//!
//! Results land in `BENCH_telemetry.json`.
//!
//! ```text
//! cargo run --release --bin telemetry -- --scale test --seeds 1
//! ```

use riptide_bench::{banner, parse_args, resolved_threads, write_bench_json};
use riptide_cdn::engine::RunPlan;

fn main() {
    let opts = parse_args();
    banner(
        "Telemetry",
        "metrics snapshot invariance and zero-overhead check for one probe plan",
    );
    let plan = RunPlan::probe_comparison(&opts.scale, opts.seeds.max(1) as u32);
    let instrumented = plan.clone().with_telemetry();
    let threads = resolved_threads(&opts).max(2);

    eprintln!(
        "running {} instrumented shards on 1 and {threads} thread(s)...",
        instrumented.shards.len()
    );
    let serial = instrumented.run_with_threads(1);
    let parallel = instrumented.run_with_threads(threads);
    let thread_invariant = serial.digest() == parallel.digest()
        && serial.merged_metrics() == parallel.merged_metrics();
    assert!(thread_invariant, "merged metrics diverged across pools");

    eprintln!("running the uninstrumented control...");
    let plain = plan.run_with_threads(threads);
    let stripped: String = serial
        .digest()
        .lines()
        .map(|l| match l.find(" metrics=") {
            Some(cut) => format!("{}\n", &l[..cut]),
            None => format!("{l}\n"),
        })
        .collect();
    let zero_overhead = stripped == plain.digest() && plain.merged_metrics().is_empty();
    assert!(zero_overhead, "telemetry perturbed the simulation digest");

    let merged = serial.merged_metrics();
    let count = |name: &str| merged.value(name).unwrap_or(0);
    let ticks = count("riptide_ticks_total");
    let observations = count("riptide_observations_total");
    let route_updates = count("riptide_route_updates_total");
    let expirations = count("riptide_route_expirations_total");
    assert!(
        ticks > 0 && observations > 0 && route_updates > 0,
        "key counters stayed at zero: ticks={ticks} observations={observations} \
         route_updates={route_updates}"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"telemetry-probe-plan\",\n  \
         \"shards\": {},\n  \"threads\": {},\n  \
         \"thread_invariant\": {},\n  \"zero_overhead\": {},\n  \
         \"riptide_ticks_total\": {},\n  \"riptide_observations_total\": {},\n  \
         \"riptide_route_updates_total\": {},\n  \"riptide_route_expirations_total\": {},\n  \
         \"metric_families\": {}\n}}\n",
        instrumented.shards.len(),
        threads,
        thread_invariant,
        zero_overhead,
        ticks,
        observations,
        route_updates,
        expirations,
        merged.len()
    );
    write_bench_json(&opts, "BENCH_telemetry.json", &json);
    print!("{json}");
    println!(
        "# {} shards: thread-invariant metrics, zero-overhead digests, \
         {route_updates} route updates across {ticks} agent ticks",
        instrumented.shards.len()
    );
}
