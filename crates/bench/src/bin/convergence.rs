//! Beyond the paper: how fast Riptide's learned state converges from a
//! cold start. Justifies the experiment warm-up windows and illustrates
//! §V's point that effectiveness tracks the traffic profile: the learned
//! table fills as fast as traffic touches destinations.

use riptide::config::RiptideConfig;
use riptide_bench::{banner, parse_args};
use riptide_cdn::experiment::default_busy_sites;
use riptide_cdn::prelude::*;
use riptide_simnet::time::SimDuration;

fn main() {
    let opts = parse_args();
    banner(
        "Convergence",
        "mean learned window and live destinations over time from a cold start",
    );
    let scale = &opts.scale;
    let cfg = CdnSimConfig {
        testbed: riptide_cdn::topology::TestbedConfig::tiny(
            scale.sites,
            scale.machines_per_pop,
            scale.seed,
        ),
        riptide: Some(RiptideConfig::deployment()),
        probes: ProbeConfig {
            interval: scale.probe_interval,
            ..ProbeConfig::default()
        },
        organic: OrganicConfig::among(default_busy_sites(scale), 0.2),
        cwnd_sample_interval: SimDuration::from_secs(60),
        probe_senders: None,
    };
    let mut sim = CdnSim::new(cfg);
    println!(
        "{:>10} {:>16} {:>14} {:>14}",
        "t_secs", "mean_window", "destinations", "route_updates"
    );
    let step = SimDuration::from_secs(60);
    let total = scale.warmup + scale.duration;
    let steps = (total.as_secs_f64() / step.as_secs_f64()).ceil() as u64;
    for i in 1..=steps {
        sim.run_for(step);
        // Print a dense head (first 10 minutes) then every 10 minutes.
        if i <= 10 || i % 10 == 0 {
            let (mean, n) = sim.mean_learned_window().unwrap_or((0.0, 0));
            println!(
                "{:>10} {:>16.1} {:>14} {:>14}",
                i * 60,
                mean,
                n,
                sim.agent_stats_total().route_updates
            );
        }
    }
    println!("\n# reading: destinations covered by learned routes plateau once every");
    println!("# (machine, destination) pair has been touched by probes or organic flows;");
    println!("# the warm-up window in EXPERIMENTS.md is chosen past that plateau.");
}
