//! Beyond the paper: how fast Riptide's learned state converges from a
//! cold start. Justifies the experiment warm-up windows and illustrates
//! §V's point that effectiveness tracks the traffic profile: the learned
//! table fills as fast as traffic touches destinations.
//!
//! Runs as a single engine shard (the trajectory is one world stepped
//! through time and cannot be split).

use riptide_bench::{banner, execute_plan, parse_args};
use riptide_cdn::engine::RunPlan;
use riptide_simnet::time::SimDuration;

fn main() {
    let opts = parse_args();
    banner(
        "Convergence",
        "mean learned window and live destinations over time from a cold start",
    );
    let plan = RunPlan::convergence(&opts.scale, SimDuration::from_secs(60));
    let report = execute_plan(&opts, &plan);
    println!(
        "{:>10} {:>16} {:>14} {:>14}",
        "t_secs", "mean_window", "destinations", "route_updates"
    );
    for (i, point) in report.convergence_points().iter().enumerate() {
        // Print a dense head (first 10 minutes) then every 10 minutes.
        let minute = i + 1;
        if minute <= 10 || minute % 10 == 0 {
            println!(
                "{:>10} {:>16.1} {:>14} {:>14}",
                point.at_secs, point.mean_window, point.destinations, point.route_updates
            );
        }
    }
    println!("\n# reading: destinations covered by learned routes plateau once every");
    println!("# (machine, destination) pair has been touched by probes or organic flows;");
    println!("# the warm-up window in EXPERIMENTS.md is chosen past that plateau.");
}
