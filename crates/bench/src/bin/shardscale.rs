//! Shard-scaling curve: the quick-scale probe comparison swept over
//! worker-thread counts, recording wall-clock, events/sec, speedup and
//! efficiency per point — with every point's run digest cross-checked
//! against every other, so the curve doubles as a proof that the
//! work-stealing scheduler is thread-count invariant.
//!
//! ```text
//! cargo run --release --bin shardscale -- [--scale test|quick|paper]
//!     [--seeds N] [--max-threads N] [--check] [--out PATH]
//! ```
//!
//! * Default mode sweeps threads over powers of two from 1 up to
//!   `--max-threads` (default: `max(4, hardware threads)`) and rewrites
//!   `BENCH_shardscale.json` with the full curve.
//! * `--check` regression mode for CI: re-runs only the two endpoints
//!   (threads = 1 and the scaling-floor thread count), compares the
//!   serial digest against the recorded baseline (**drift is fatal**),
//!   asserts the two endpoint digests match (**steal-order divergence
//!   is fatal**), and — on a machine with at least
//!   [`FLOOR_THREADS`] hardware threads — fails unless the measured
//!   speedup at [`FLOOR_THREADS`] reaches [`FLOOR_SPEEDUP`]. On
//!   smaller machines the scaling floor is skipped (a 1-core runner
//!   cannot exhibit parallel speedup), but the digest gates always run.

use std::process::ExitCode;
use std::time::Instant;

use riptide_bench::banner;
use riptide_cdn::engine::{RunPlan, RunReport};
use riptide_cdn::experiment::ExperimentScale;

const BENCH_FILE: &str = "BENCH_shardscale.json";
/// The thread count the scaling floor is measured at.
const FLOOR_THREADS: usize = 4;
/// Minimum speedup over threads=1 that `--check` demands at
/// [`FLOOR_THREADS`] on a machine with that many hardware threads.
const FLOOR_SPEEDUP: f64 = 2.0;

struct Options {
    scale_name: String,
    scale: ExperimentScale,
    seeds: u32,
    max_threads: usize,
    check: bool,
    /// The bench file: read in `--check` mode, rewritten otherwise.
    out: std::path::PathBuf,
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse() -> Options {
    let mut opts = Options {
        scale_name: "quick".into(),
        scale: ExperimentScale::quick(),
        seeds: 1,
        max_threads: hardware_threads().max(FLOOR_THREADS),
        check: false,
        out: std::path::PathBuf::from(BENCH_FILE),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                opts.scale = match v.as_str() {
                    "test" => ExperimentScale::test(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => panic!("unknown scale {other:?} (test|quick|paper)"),
                };
                opts.scale_name = v;
            }
            "--seeds" => {
                opts.seeds = value("--seeds").parse().expect("--seeds takes a number");
                assert!(opts.seeds >= 1, "--seeds must be at least 1");
            }
            "--max-threads" => {
                opts.max_threads = value("--max-threads")
                    .parse()
                    .expect("--max-threads takes a number");
                assert!(opts.max_threads >= 1, "--max-threads must be at least 1");
            }
            "--check" => opts.check = true,
            "--out" => opts.out = std::path::PathBuf::from(value("--out")),
            "--help" | "-h" => {
                println!(
                    "usage: shardscale [--scale test|quick|paper] [--seeds N] \
                     [--max-threads N] [--check] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; try --help"),
        }
    }
    opts
}

/// The sweep's thread counts: powers of two from 1 to `max`, plus
/// `max` itself when it is not a power of two.
fn sweep_points(max: usize) -> Vec<usize> {
    let mut points = Vec::new();
    let mut t = 1usize;
    while t <= max {
        points.push(t);
        t *= 2;
    }
    if *points.last().expect("at least threads=1") != max {
        points.push(max);
    }
    points
}

struct Point {
    threads: usize,
    wall_ms: u64,
    events_per_sec: f64,
    digest_fnv: u64,
}

fn measure(plan: &RunPlan, threads: usize) -> (Point, RunReport) {
    let started = Instant::now();
    let report = plan.run_with_threads(threads);
    let wall_ms = started.elapsed().as_millis().max(1) as u64;
    (
        Point {
            threads,
            wall_ms,
            events_per_sec: report.total_events() as f64 * 1000.0 / wall_ms as f64,
            digest_fnv: report.digest_fnv64(),
        },
        report,
    )
}

/// Same flat-JSON field scan as `simperf` (the workspace has no JSON
/// dependency; bench files keep one scalar per line above the curve).
fn json_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find([',', '\n', '}'])
        .expect("bench JSON values end the line");
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn check(opts: &Options, plan: &RunPlan) -> ExitCode {
    let text = match std::fs::read_to_string(&opts.out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("shardscale: cannot read {}: {e}", opts.out.display());
            return ExitCode::FAILURE;
        }
    };
    let want_scale = json_field(&text, "scale").unwrap_or_default();
    if want_scale != opts.scale_name {
        eprintln!(
            "shardscale: {} was recorded at --scale {want_scale}, this run used --scale {}",
            opts.out.display(),
            opts.scale_name
        );
        return ExitCode::FAILURE;
    }

    eprintln!("check: running the serial endpoint...");
    let (serial, _) = measure(plan, 1);
    let digest = format!("{:016x}", serial.digest_fnv);
    let want_digest = json_field(&text, "digest_fnv").unwrap_or_default();
    if want_digest != digest {
        eprintln!(
            "shardscale: DIGEST DRIFT — baseline {want_digest}, got {digest}; \
             the engine's observable behaviour changed"
        );
        return ExitCode::FAILURE;
    }

    eprintln!("check: running the threads={FLOOR_THREADS} endpoint...");
    let (wide, _) = measure(plan, FLOOR_THREADS);
    if wide.digest_fnv != serial.digest_fnv {
        eprintln!(
            "shardscale: threads=1 and threads={FLOOR_THREADS} diverged \
             ({:016x} vs {digest}); the scheduler broke merge invariance",
            wide.digest_fnv
        );
        return ExitCode::FAILURE;
    }

    let speedup = serial.wall_ms as f64 / wide.wall_ms.max(1) as f64;
    let hw = hardware_threads();
    println!(
        "# check: digests identical; threads={FLOOR_THREADS} speedup {speedup:.2}x \
         on {hw} hardware thread(s)"
    );
    if hw >= FLOOR_THREADS {
        if speedup < FLOOR_SPEEDUP {
            eprintln!(
                "shardscale: SCALING REGRESSION — threads={FLOOR_THREADS} speedup \
                 {speedup:.2}x is below the {FLOOR_SPEEDUP:.1}x floor"
            );
            return ExitCode::FAILURE;
        }
    } else {
        println!(
            "# check: scaling floor skipped ({hw} hardware thread(s) < {FLOOR_THREADS}); \
             digest gates still enforced"
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse();
    banner(
        "Shard scaling",
        "thread-count sweep of the probe-comparison plan under the work-stealing scheduler",
    );
    let plan = RunPlan::probe_comparison(&opts.scale, opts.seeds);
    if opts.check {
        return check(&opts, &plan);
    }

    let points = sweep_points(opts.max_threads);
    let hw = hardware_threads();
    eprintln!(
        "sweeping {} shards at --scale {} over threads {:?} ({} hardware)...",
        plan.shards.len(),
        opts.scale_name,
        points,
        hw
    );
    let mut curve: Vec<Point> = Vec::with_capacity(points.len());
    let mut events = 0u64;
    for &t in &points {
        eprintln!("  threads={t}...");
        let (point, report) = measure(&plan, t);
        events = report.total_events();
        curve.push(point);
    }
    let serial = &curve[0];
    let digests_identical = curve.iter().all(|p| p.digest_fnv == serial.digest_fnv);
    assert!(
        digests_identical,
        "digest diverged across thread counts — scheduler broke merge invariance"
    );

    let rows: Vec<String> = curve
        .iter()
        .map(|p| {
            let speedup = serial.wall_ms as f64 / p.wall_ms.max(1) as f64;
            format!(
                "    {{\"threads\": {}, \"wall_ms\": {}, \"events_per_sec\": {:.0}, \
                 \"speedup\": {:.2}, \"efficiency\": {:.2}}}",
                p.threads,
                p.wall_ms,
                p.events_per_sec,
                speedup,
                speedup / p.threads as f64
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"shardscale-probe-comparison\",\n  \
         \"scale\": \"{}\",\n  \"shards\": {},\n  \"hardware_threads\": {},\n  \
         \"events\": {},\n  \"digest_fnv\": \"{:016x}\",\n  \
         \"digests_identical\": {},\n  \"floor_threads\": {},\n  \
         \"floor_speedup\": {:.1},\n  \"curve\": [\n{}\n  ]\n}}\n",
        opts.scale_name,
        plan.shards.len(),
        hw,
        events,
        serial.digest_fnv,
        digests_identical,
        FLOOR_THREADS,
        FLOOR_SPEEDUP,
        rows.join(",\n")
    );
    std::fs::write(&opts.out, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", opts.out.display()));
    print!("{json}");
    let best = curve
        .iter()
        .min_by_key(|p| p.wall_ms)
        .expect("at least one point");
    println!(
        "# {} events; serial {} ms, best {} ms at threads={} \
         ({:.2}x); digests identical at every point",
        events,
        serial.wall_ms,
        best.wall_ms,
        best.threads,
        serial.wall_ms as f64 / best.wall_ms.max(1) as f64
    );
    ExitCode::SUCCESS
}
