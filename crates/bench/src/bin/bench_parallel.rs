//! Records the parallel engine's scaling for one Fig. 10-sized window:
//! the same cwnd-sweep plan executed serially and on a multi-thread
//! pool, with the determinism cross-check (identical digests) and
//! wall-clock times written to `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release --bin bench_parallel -- --scale test --seeds 2
//! ```
//!
//! `--threads N` sets the parallel arm's pool size (default: all
//! cores). Speedup tracks the machine: on a single hardware thread the
//! two arms tie (the `hardware_threads` field records this), while an
//! 8-core machine runs the 12-shard default plan ~6-8x faster.

use std::time::Instant;

use riptide_bench::{banner, parse_args, resolved_threads, write_bench_json};
use riptide_cdn::engine::{RunPlan, RunReport};

fn timed(plan: &RunPlan, threads: usize) -> (RunReport, u64) {
    let started = Instant::now();
    let report = plan.run_with_threads(threads);
    (report, started.elapsed().as_millis() as u64)
}

fn main() {
    let opts = parse_args();
    banner(
        "Parallel engine",
        "serial vs multi-thread wall time for one Fig. 10-sized cwnd sweep",
    );
    let sweep: [Option<u32>; 6] = [None, Some(50), Some(100), Some(150), Some(200), Some(250)];
    let plan = RunPlan::cwnd_sweep(&opts.scale, &sweep, opts.seeds.max(2) as u32);
    let parallel_threads = resolved_threads(&opts).max(2);
    let hardware_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    eprintln!("running {} shards serially...", plan.shards.len());
    let (serial, serial_ms) = timed(&plan, 1);
    eprintln!(
        "running {} shards on {parallel_threads} threads...",
        plan.shards.len()
    );
    let (parallel, parallel_ms) = timed(&plan, parallel_threads);

    let identical = serial.digest() == parallel.digest();
    assert!(
        identical,
        "threads=1 and threads={parallel_threads} diverged"
    );
    let speedup = serial_ms as f64 / parallel_ms.max(1) as f64;

    let json = format!(
        "{{\n  \"benchmark\": \"parallel-engine-cwnd-sweep\",\n  \
         \"sites\": {},\n  \"simulated_secs\": {},\n  \"shards\": {},\n  \
         \"hardware_threads\": {},\n  \"digests_identical\": {},\n  \
         \"runs\": [\n    {{\"threads\": 1, \"wall_ms\": {}}},\n    \
         {{\"threads\": {}, \"wall_ms\": {}}}\n  ],\n  \
         \"speedup\": {:.2}\n}}\n",
        opts.scale.sites,
        opts.scale.total().as_secs_f64().round() as u64,
        plan.shards.len(),
        hardware_threads,
        identical,
        serial_ms,
        parallel_threads,
        parallel_ms,
        speedup
    );
    write_bench_json(&opts, "BENCH_parallel.json", &json);
    print!("{json}");
    println!(
        "# serial {serial_ms} ms vs {parallel_threads} threads {parallel_ms} ms \
         ({speedup:.2}x) on {hardware_threads} hardware thread(s); digests identical"
    );
}
