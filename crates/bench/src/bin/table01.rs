//! Table I: Riptide's input parameters, plus a live demonstration of the
//! Fig. 7 mechanism (averaging observed windows) and the Fig. 8 command.

use riptide::prelude::*;
use riptide_linuxnet::route::RouteTable;
use riptide_simnet::time::SimTime;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

fn main() {
    println!("# Table I: Riptide input parameters (deployment values)");
    let cfg = RiptideConfig::deployment();
    let alpha = match cfg.policy {
        LearningPolicy::History(HistoryStrategy::Ewma { alpha }) => format!("{alpha}"),
        ref other => format!("({other:?})"),
    };
    println!("{:>10} {:>44} {:>12}", "parameter", "use", "value");
    println!(
        "{:>10} {:>44} {:>12}",
        "alpha", "weight applied to historical data", alpha
    );
    println!(
        "{:>10} {:>44} {:>12}",
        "i_u",
        "update interval to poll current windows",
        cfg.update_interval.to_string()
    );
    println!(
        "{:>10} {:>44} {:>12}",
        "t",
        "time to live of a stored window",
        cfg.ttl.to_string()
    );
    println!(
        "{:>10} {:>44} {:>12}",
        "c_max", "maximum allowed window", cfg.cwnd_max
    );
    println!(
        "{:>10} {:>44} {:>12}",
        "c_min", "minimum allowed window", cfg.cwnd_min
    );
    println!(
        "{:>10} {:>44} {:>12}",
        "combine",
        "per-destination combination strategy",
        cfg.combine.to_string()
    );
    println!(
        "{:>10} {:>44} {:>12}",
        "routes",
        "destination granularity",
        cfg.granularity.name()
    );

    // Fig. 7: windows 60/80/100 to one destination average to 80.
    println!("\n# Fig. 7 mechanism demo: observed windows 60, 80, 100 -> initcwnd 80");
    let table = Rc::new(RefCell::new(RouteTable::new()));
    let mut controller = SharedRouteController::new(Rc::clone(&table));
    let mut agent = RiptideAgent::new(
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .build()
            .expect("valid config"),
    )
    .expect("valid config");
    let dst = Ipv4Addr::new(10, 0, 0, 127);
    let mut observer = FnObserver(|| {
        [60u32, 80, 100]
            .iter()
            .map(|&cwnd| CwndObservation {
                dst,
                cwnd,
                bytes_acked: 1 << 20,
                retrans: 0,
                ecn_marks: 0,
            })
            .collect()
    });
    agent.tick(SimTime::from_secs(1), &mut observer, &mut controller);
    println!(
        "learned_window({dst}) = {:?}",
        table.borrow().initcwnd_for(dst)
    );

    // Fig. 8: the exact command shape the agent issued.
    println!("\n# Fig. 8: command issued (replace variant of the paper's `add`):");
    print!("{}", controller.render_log());
}
