//! Figure 4: theoretical gain (percentage reduction in RTTs) from using
//! initcwnd 25, 50 or 100 instead of the default 10, across file sizes.

use riptide::model::{rtt_gain, DEFAULT_MSS};
use riptide_bench::{banner, log_spaced_sizes, parse_args};

fn main() {
    let opts = parse_args();
    banner(
        "Figure 4",
        "reduction in RTTs vs the default initcwnd of 10, by file size",
    );
    println!(
        "{:>12} {:>10} {:>10} {:>10}",
        "bytes", "iw25_gain%", "iw50_gain%", "iw100_gain%"
    );
    let mut peak: (u64, f64) = (0, 0.0);
    for size in log_spaced_sizes(1_000, 10_000_000, opts.points.max(24)) {
        let g25 = rtt_gain(size, DEFAULT_MSS, 25, 10) * 100.0;
        let g50 = rtt_gain(size, DEFAULT_MSS, 50, 10) * 100.0;
        let g100 = rtt_gain(size, DEFAULT_MSS, 100, 10) * 100.0;
        if g100 > peak.1 {
            peak = (size, g100);
        }
        println!("{size:>12} {g25:>10.1} {g50:>10.1} {g100:>10.1}");
    }
    println!("\n# paper: primary improvements between 15KB and 1000KB, then diminishing");
    println!(
        "# measured: peak iw100 gain {:.1}% at {} bytes",
        peak.1, peak.0
    );
}
