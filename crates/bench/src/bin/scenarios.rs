//! Scenario matrix: every registered learning policy raced across the
//! [`scenario_catalog`] regimes (RED/ECN queues, lossy last mile,
//! flash crowds, paced senders), seed-paired, with the run digest
//! pinned so the matrix doubles as a behaviour-preservation gate.
//!
//! ```text
//! cargo run --release --bin scenarios -- [--scale test|quick|paper]
//!     [--seeds N] [--threads N] [--check] [--out PATH]
//! ```
//!
//! * Default mode runs [`RunPlan::scenario_matrix`] and rewrites
//!   `BENCH_scenarios.json` with per-scenario policy rankings (mean
//!   median-completion gain vs each cell's paired control arm).
//! * `--check` regression mode: re-runs and compares against the
//!   checked-in baseline instead of rewriting it. Digest drift is
//!   fatal, as are the two separation claims below.
//! * In **every** mode three claims are enforced:
//!   1. the baseline cell's control and default-EWMA arms reproduce
//!      [`RunPlan::probe_comparison`] bit for bit (the scenario seam
//!      must cost nothing when every knob is off);
//!   2. at least two non-baseline scenarios rank the policies
//!      differently than the baseline regime does — the matrix
//!      actually separates what the flat §IV regime could not;
//!   3. on the lossy-edge cell the loss-utility policy out-gains
//!      default EWMA — loss-blind averaging must pay for its
//!      aggression where random loss punishes big windows.
//!
//! [`scenario_catalog`]: riptide_cdn::scenario::scenario_catalog

use std::process::ExitCode;

use riptide_bench::banner;
use riptide_cdn::engine::RunPlan;
use riptide_cdn::experiment::ExperimentScale;
use riptide_cdn::scenario::scenario_catalog;
use riptide_cdn::sim::ProbeOutcome;
use riptide_cdn::stats::Cdf;
use riptide_cdn::workload::ProbeConfig;

const BENCH_FILE: &str = "BENCH_scenarios.json";

struct Options {
    scale_name: String,
    scale: ExperimentScale,
    seeds: u32,
    threads: usize,
    check: bool,
    /// The bench file: read in `--check` mode, rewritten otherwise.
    /// `--out` points smoke runs away from the checked-in baseline.
    out: std::path::PathBuf,
}

fn parse() -> Options {
    let mut opts = Options {
        scale_name: "test".into(),
        scale: ExperimentScale::test(),
        seeds: 2,
        threads: 1,
        check: false,
        out: std::path::PathBuf::from(BENCH_FILE),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                opts.scale = match v.as_str() {
                    "test" => ExperimentScale::test(),
                    "quick" => ExperimentScale::quick(),
                    "paper" => ExperimentScale::paper(),
                    other => panic!("unknown scale {other:?} (test|quick|paper)"),
                };
                opts.scale_name = v;
            }
            "--seeds" => {
                opts.seeds = value("--seeds").parse().expect("--seeds takes a number");
                assert!(opts.seeds >= 1, "--seeds must be at least 1");
            }
            "--threads" => {
                opts.threads = value("--threads")
                    .parse()
                    .expect("--threads takes a number");
                assert!(opts.threads >= 1, "--threads must be at least 1");
            }
            "--check" => opts.check = true,
            "--out" => opts.out = std::path::PathBuf::from(value("--out")),
            "--help" | "-h" => {
                println!(
                    "usage: scenarios [--scale test|quick|paper] [--seeds N] \
                     [--threads N] [--check] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}; try --help"),
        }
    }
    opts
}

/// Pulls `"key": <value>` out of the flat bench JSON (no JSON
/// dependency in the workspace; the keys this reads are top-level and
/// unique, so a string scan suffices).
fn json_field(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find([',', '\n', '}'])
        .expect("bench JSON values end the line");
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn median_ms(probes: &[ProbeOutcome], size: u64) -> Option<f64> {
    let cdf = Cdf::new(
        probes
            .iter()
            .filter(|p| p.size == size)
            .map(|p| p.completion.as_millis_f64()),
    );
    (!cdf.is_empty()).then(|| cdf.median())
}

/// Mean per-size median gain (%) of `treated` over `control`.
fn mean_gain_pct(control: &[ProbeOutcome], treated: &[ProbeOutcome], sizes: &[u64]) -> f64 {
    let mut gains = Vec::new();
    for &size in sizes {
        if let (Some(c), Some(t)) = (median_ms(control, size), median_ms(treated, size)) {
            gains.push((c - t) / c * 100.0);
        }
    }
    gains.iter().sum::<f64>() / gains.len().max(1) as f64
}

/// One matrix cell's outcome: each policy arm's mean gain vs the
/// cell's paired control, and the resulting ranking (best first, ties
/// broken by arm name so the order is a pure function of the data).
struct CellResult {
    name: &'static str,
    arm_gains: Vec<(String, f64)>,
    ranking: Vec<String>,
}

fn main() -> ExitCode {
    let opts = parse();
    banner(
        "Scenario matrix",
        "every registered policy across RED/ECN, lossy-edge, flash-crowd and paced regimes",
    );
    let plan = RunPlan::scenario_matrix(&opts.scale, opts.seeds);
    eprintln!(
        "running {} shards at --scale {} on {} thread(s)...",
        plan.shards.len(),
        opts.scale_name,
        opts.threads
    );
    let report = plan.run_with_threads(opts.threads);
    let digest_fnv = format!("{:016x}", report.digest_fnv64());

    // Claim 1: with every scenario knob off, the matrix's baseline cell
    // is the plain probe comparison, outcome for outcome.
    let baseline =
        RunPlan::probe_comparison(&opts.scale, opts.seeds).run_with_threads(opts.threads);
    assert_eq!(
        report.merged_probes(0),
        baseline.merged_probes(0),
        "baseline-cell control arm diverged from probe_comparison"
    );
    assert_eq!(
        report.merged_probes(1),
        baseline.merged_probes(1),
        "baseline-cell default-EWMA arm diverged from probe_comparison"
    );
    println!("# baseline cell bit-identical to the probe comparison");

    let sizes = ProbeConfig::default().sizes;
    let arms = RunPlan::scenario_arms();
    let arms_per = arms.len();
    let catalog = scenario_catalog(&opts.scale);
    let mut cells = Vec::new();
    for (c, spec) in catalog.iter().enumerate() {
        let base = (arms_per * c) as u32;
        let control = report.merged_probes(base);
        let mut arm_gains = Vec::new();
        for (arm_idx, (arm, _)) in arms.iter().enumerate().skip(1) {
            let treated = report.merged_probes(base + arm_idx as u32);
            arm_gains.push((arm.clone(), mean_gain_pct(&control, &treated, &sizes)));
        }
        let mut ranking = arm_gains.clone();
        ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        cells.push(CellResult {
            name: spec.name,
            arm_gains,
            ranking: ranking.into_iter().map(|(a, _)| a).collect(),
        });
    }

    println!(
        "{:>12} {:>46}  ranking",
        "scenario", "mean_gain% per policy arm"
    );
    for cell in &cells {
        let gains: Vec<String> = cell
            .arm_gains
            .iter()
            .map(|(a, g)| format!("{a}={g:.1}"))
            .collect();
        println!(
            "{:>12} {:>46}  {}",
            cell.name,
            gains.join(" "),
            cell.ranking.join(">")
        );
    }

    // Claim 2: the matrix separates the policies — at least two
    // non-baseline regimes produce a different ranking than baseline.
    let divergent: Vec<&str> = cells[1..]
        .iter()
        .filter(|c| c.ranking != cells[0].ranking)
        .map(|c| c.name)
        .collect();
    assert!(
        divergent.len() >= 2,
        "only {} scenario(s) re-ranked the policies ({divergent:?}); \
         the matrix adds no information over the flat regime",
        divergent.len()
    );
    println!(
        "# {} of {} scenarios rank the policies differently than baseline: {}",
        divergent.len(),
        cells.len() - 1,
        divergent.join(", ")
    );

    // Claim 3: where random loss punishes aggressive windows, the
    // loss-aware policy must out-gain loss-blind EWMA.
    let lossy = cells
        .iter()
        .find(|c| c.name == "lossy-edge")
        .expect("catalog has a lossy-edge cell");
    let gain_of = |arm: &str| {
        lossy
            .arm_gains
            .iter()
            .find(|(a, _)| a == arm)
            .map(|(_, g)| *g)
            .expect("arm present")
    };
    let (lu, ewma) = (gain_of("loss-utility"), gain_of("riptide"));
    assert!(
        lu > ewma,
        "loss-utility ({lu:.2}%) must beat EWMA ({ewma:.2}%) on the lossy edge"
    );
    println!("# lossy-edge: loss-utility {lu:.1}% > ewma {ewma:.1}%");

    if opts.check {
        let text = match std::fs::read_to_string(&opts.out) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scenarios: cannot read {}: {e}", opts.out.display());
                return ExitCode::FAILURE;
            }
        };
        let want_scale = json_field(&text, "scale").unwrap_or_default();
        if want_scale != opts.scale_name {
            eprintln!(
                "scenarios: {} was recorded at --scale {want_scale}, \
                 this run used --scale {}",
                opts.out.display(),
                opts.scale_name
            );
            return ExitCode::FAILURE;
        }
        let want_seeds = json_field(&text, "seeds").unwrap_or_default();
        if want_seeds != opts.seeds.to_string() {
            eprintln!(
                "scenarios: {} was recorded with --seeds {want_seeds}, \
                 this run used --seeds {}",
                opts.out.display(),
                opts.seeds
            );
            return ExitCode::FAILURE;
        }
        let want_digest = json_field(&text, "digest_fnv").unwrap_or_default();
        if want_digest != digest_fnv {
            eprintln!(
                "scenarios: DIGEST DRIFT — baseline {want_digest}, got {digest_fnv}; \
                 some scenario's observable behaviour changed"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "# check: digest ok ({digest_fnv}), {} cells, {} divergent",
            cells.len(),
            divergent.len()
        );
        return ExitCode::SUCCESS;
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let gains: Vec<String> = c
                .arm_gains
                .iter()
                .map(|(a, g)| format!("{{\"policy\": \"{a}\", \"mean_gain_pct\": {g:.2}}}"))
                .collect();
            let ranking: Vec<String> = c.ranking.iter().map(|a| format!("\"{a}\"")).collect();
            format!(
                "    {{\"scenario\": \"{}\", \"ranking\": [{}], \"arms\": [{}]}}",
                c.name,
                ranking.join(", "),
                gains.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"scenario-matrix\",\n  \"scale\": \"{}\",\n  \
         \"seeds\": {},\n  \"shards\": {},\n  \
         \"baseline_bit_identical\": true,\n  \"digest_fnv\": \"{}\",\n  \
         \"ranking_divergent_cells\": {},\n  \
         \"lossy_edge_loss_utility_beats_ewma\": true,\n  \
         \"probe_sizes\": [{}],\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        opts.scale_name,
        opts.seeds,
        plan.shards.len(),
        digest_fnv,
        divergent.len(),
        sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        rows.join(",\n")
    );
    std::fs::write(&opts.out, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", opts.out.display()));
    print!("{json}");
    println!(
        "# scenario matrix recorded for {} cells; digest {digest_fnv}",
        cells.len()
    );
    ExitCode::SUCCESS
}
