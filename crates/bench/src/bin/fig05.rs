//! Figure 5: RTT variation between the globally deployed datacenters —
//! 50% of links have an RTT above 125 ms.

use riptide_bench::{banner, parse_args, print_cdf_series};
use riptide_cdn::geo::all_pair_rtts;
use riptide_cdn::stats::Cdf;

fn main() {
    let opts = parse_args();
    banner(
        "Figure 5",
        "inter-PoP RTT distribution of the 34-PoP footprint",
    );
    let rtts = all_pair_rtts();
    let cdf = Cdf::new(rtts.iter().map(|r| r.as_millis_f64()));
    println!("{:>16} {:>12} {:>7}", "series", "rtt_ms", "cdf");
    print_cdf_series("all-pairs", &cdf, opts.points);
    println!("\n# paper: 50% of links have an RTT > 125 ms");
    println!(
        "# measured: median {:.1} ms; {:.1}% of pairs above 125 ms",
        cdf.median(),
        (1.0 - cdf.fraction_at_or_below(125.0)) * 100.0
    );
}
