//! Figure 14: CDF of probe completion time for 100 KB probes, grouped by
//! destination RTT — gains across ~78% of connections.

use riptide_bench::{parse_args, run_probe_time_figure};

fn main() {
    let opts = parse_args();
    run_probe_time_figure(
        &opts,
        100_000,
        "Figure 14",
        "100KB probes achieve gains across ~78% of observed connections; \
         Riptide flows regularly complete an RTT sooner",
    );
}
