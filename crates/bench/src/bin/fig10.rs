//! Figure 10: CDF of live congestion windows across all datacenters for
//! each `c_max` value (50, 100, 150, 200, 250) plus a no-Riptide control.
//!
//! The paper's takeaways this run checks: Riptide at `c_max = 50` doubles
//! the median window vs the control; a knee at `c_max = 100` gives most
//! of the gains; each curve shows a mode at its own `c_max`.
//!
//! Arms (and `--seeds` replicates) run as independent shards on the
//! parallel engine; per-shard CDFs merge in plan order.

use riptide_bench::{banner, execute_plan, parse_args, print_cdf_series, print_cdf_summary};
use riptide_cdn::engine::RunPlan;

fn main() {
    let opts = parse_args();
    banner(
        "Figure 10",
        "live congestion-window CDFs under the c_max sweep (12h-style run)",
    );
    let sweep: [Option<u32>; 6] = [None, Some(50), Some(100), Some(150), Some(200), Some(250)];
    let plan = RunPlan::cwnd_sweep(&opts.scale, &sweep, opts.seeds as u32);
    let report = execute_plan(&opts, &plan);
    let mut results = Vec::new();
    println!("{:>16} {:>12} {:>7}", "series", "cwnd_segs", "cdf");
    for (scenario, c_max) in sweep.iter().enumerate() {
        let label = match c_max {
            None => "control".to_string(),
            Some(m) => format!("cmax{m}"),
        };
        let cdf = report.merged_cwnd(scenario as u32);
        print_cdf_series(&label, &cdf, opts.points);
        results.push((label, *c_max, cdf));
    }
    println!();
    for (label, _, cdf) in &results {
        print_cdf_summary(label, cdf);
    }
    let control_median = results[0].2.median();
    let cmax50_median = results[1].2.median();
    println!("\n# paper: c_max=50 median is +100% over the control; knee at c_max=100");
    println!(
        "# measured: control median {control_median:.0}, c_max=50 median {cmax50_median:.0} ({:+.0}%)",
        (cmax50_median / control_median - 1.0) * 100.0
    );
    for (label, c_max, cdf) in &results[1..] {
        if let Some(m) = c_max {
            let at_mode = cdf.fraction_at_or_below(*m as f64 + 0.5)
                - cdf.fraction_at_or_below(*m as f64 - 0.5);
            println!(
                "# {label}: {:.1}% of sampled windows sit exactly at its c_max (the Fig. 10 mode)",
                at_mode * 100.0
            );
        }
    }
}
