//! On-the-wire units exchanged between simulated TCP endpoints.
//!
//! The simulator models data segments individually (they occupy queue space
//! and can be dropped) while control packets — SYN/SYN-ACK and pure ACKs —
//! are modelled as delay-only: they still traverse the path's propagation
//! delay but are too small to contend for queue space. This mirrors the
//! paper's §II-B model assumptions and keeps the dynamics focused on the
//! forward data path, where initcwnd matters.

use crate::ids::ConnId;

/// Sequence position expressed in whole MSS-sized segments.
///
/// The simulated sender transmits full segments only (the last segment of a
/// transfer may be logically short but still occupies one slot), so segment
/// indices are sufficient and keep arithmetic exact.
pub type SegIndex = u64;

/// A TCP data segment in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Connection this segment belongs to.
    pub conn: ConnId,
    /// Index of this segment within the connection's byte stream.
    pub seq: SegIndex,
    /// Bytes on the wire (payload + headers) for queue accounting.
    pub wire_bytes: u32,
    /// Whether this is a retransmission (for stats only).
    pub retransmit: bool,
    /// Whether the path's AQM set the ECN Congestion Experienced mark
    /// on this segment (RFC 3168 CE codepoint).
    pub ecn: bool,
}

/// Maximum SACK ranges carried per ACK (RFC 2018: three fit alongside
/// timestamps in the TCP option space).
pub const MAX_SACK_BLOCKS: usize = 3;

/// Selective-acknowledgement ranges: segments the receiver holds above
/// the cumulative frontier. Half-open `[start, end)` intervals in
/// segment indices, most relevant first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SackBlocks {
    blocks: [(SegIndex, SegIndex); MAX_SACK_BLOCKS],
    len: u8,
}

impl SackBlocks {
    /// No SACK information.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [(0, 0); MAX_SACK_BLOCKS],
        len: 0,
    };

    /// Appends a range; silently ignored once the option space is full.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` (empty or inverted range).
    pub fn push(&mut self, start: SegIndex, end: SegIndex) {
        assert!(
            start < end,
            "SACK range must be non-empty: [{start}, {end})"
        );
        if (self.len as usize) < MAX_SACK_BLOCKS {
            self.blocks[self.len as usize] = (start, end);
            self.len += 1;
        }
    }

    /// The carried ranges, in push order.
    pub fn iter(&self) -> impl Iterator<Item = (SegIndex, SegIndex)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }

    /// Number of ranges carried.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no ranges are carried.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A cumulative acknowledgement travelling back to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Connection being acknowledged.
    pub conn: ConnId,
    /// The receiver has every segment with index `< cum_ack`.
    pub cum_ack: SegIndex,
    /// Receive window advertised by the receiver, in segments.
    pub rwnd: u32,
    /// Selective-acknowledgement ranges (empty unless SACK is enabled).
    pub sack: SackBlocks,
    /// ECN Echo: the receiver saw a Congestion Experienced mark since
    /// its last acknowledgement (RFC 3168 ECE flag).
    pub ece: bool,
}

impl Ack {
    /// An ACK without SACK information.
    pub fn plain(conn: ConnId, cum_ack: SegIndex, rwnd: u32) -> Self {
        Ack {
            conn,
            cum_ack,
            rwnd,
            sack: SackBlocks::EMPTY,
            ece: false,
        }
    }
}

/// Control packets that consume one path RTT but no queue space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Connection request (client → server).
    Syn {
        /// The connection being opened.
        conn: ConnId,
    },
    /// Connection accept (server → client).
    SynAck {
        /// The connection being accepted.
        conn: ConnId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConnId;

    #[test]
    fn segment_fields_hold() {
        let s = Segment {
            conn: ConnId::from_index(1),
            seq: 42,
            wire_bytes: 1500,
            retransmit: false,
            ecn: false,
        };
        assert_eq!(s.seq, 42);
        assert!(!s.retransmit);
    }

    #[test]
    fn ack_semantics_are_cumulative() {
        let a = Ack::plain(ConnId::from_index(1), 10, 64);
        // cum_ack of 10 means segments 0..=9 are held by the receiver.
        assert_eq!(a.cum_ack, 10);
        assert!(a.sack.is_empty());
    }

    #[test]
    fn sack_blocks_cap_at_three() {
        let mut s = SackBlocks::EMPTY;
        s.push(5, 7);
        s.push(9, 10);
        s.push(12, 20);
        s.push(30, 40); // silently dropped: option space full
        assert_eq!(s.len(), 3);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(5, 7), (9, 10), (12, 20)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn sack_rejects_empty_range() {
        let mut s = SackBlocks::EMPTY;
        s.push(5, 5);
    }
}
