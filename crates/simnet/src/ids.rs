//! Typed identifiers for simulation entities.
//!
//! Each entity family gets its own index newtype so a `HostId` can never be
//! passed where a `ConnId` is expected. All ids are dense indices assigned
//! by the [`crate::world::World`] in creation order, which keeps lookups
//! `O(1)` vec indexing and runs reproducible.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name($repr);

        impl $name {
            /// Wraps a raw index.
            pub const fn from_index(index: $repr) -> Self {
                $name(index)
            }

            /// The raw dense index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A simulated machine (one IP address, one TCP stack).
    HostId,
    u32,
    "host"
);
id_type!(
    /// A point of presence: a group of co-located hosts.
    PopId,
    u32,
    "pop"
);
id_type!(
    /// A unidirectional network path between two PoPs.
    PathId,
    u32,
    "path"
);
id_type!(
    /// A TCP connection between two hosts.
    ConnId,
    u64,
    "conn"
);
id_type!(
    /// One application-level transfer riding a connection.
    TransferId,
    u64,
    "xfer"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let h = HostId::from_index(3);
        assert_eq!(h.index(), 3);
        assert_eq!(h.to_string(), "host3");
        assert_eq!(ConnId::from_index(9).to_string(), "conn9");
        assert_eq!(PathId::from_index(1).to_string(), "path1");
        assert_eq!(PopId::from_index(0).to_string(), "pop0");
        assert_eq!(TransferId::from_index(12).to_string(), "xfer12");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(HostId::from_index(1) < HostId::from_index(2));
    }
}
