//! Unidirectional network paths with netem-style impairments.
//!
//! A [`Path`] models everything between two PoPs in one direction: a
//! serialization rate, a finite queue under a configurable AQM
//! ([`AqmPolicy`]: drop-tail or RED with optional ECN marking), fixed
//! propagation delay, optional uniform jitter, and random packet loss.
//! These are exactly the knobs a `tc netem` + `tbf` (or `red`) testbed
//! exposes, which is what a hardware reproduction of the paper would use.
//!
//! Delivery is FIFO: jitter never reorders packets (arrival times are
//! clamped to be non-decreasing), matching netem without its `reorder`
//! option.
//!
//! Queue occupancy is tracked as an **integer byte counter** decremented
//! as packets depart the transmitter, with the serialized portion of the
//! in-flight head packet credited in integer arithmetic — no
//! floating-point reconstruction, so admission decisions at the
//! `queue_bytes` boundary are exact at any rate.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Builder-side rejections: how many times a [`PathConfig`] builder was
/// handed an out-of-range value and clamped it (see
/// [`PathConfig::rejected_configs`]).
static CONFIG_REJECTIONS: AtomicU64 = AtomicU64::new(0);

fn count_rejection() {
    CONFIG_REJECTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Active queue management policy for a path's transmit queue.
///
/// `DropTail` is the classic bounded FIFO (and the digest-pinned
/// default). `Red` implements the EWMA-average-queue RED of Floyd &
/// Jacobson as analysed by the mean-field RED literature: on each
/// arrival the average queue length is updated as
/// `avg ← (1 − w_q)·avg + w_q·q`, and the packet is dropped (or
/// ECN-marked) with probability `max_p·(avg − min_th)/(max_th − min_th)`
/// between the thresholds, always above `max_th`, never below `min_th`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AqmPolicy {
    /// Bounded FIFO: packets are dropped only when the queue is full.
    #[default]
    DropTail,
    /// Random Early Detection over the EWMA queue length, in bytes.
    Red {
        /// Average-queue threshold below which nothing is dropped.
        min_th: u64,
        /// Average-queue threshold above which everything is dropped.
        max_th: u64,
        /// Drop/mark probability as the average reaches `max_th`.
        max_p: f64,
        /// EWMA weight on the instantaneous queue sample, in `(0, 1]`.
        w_q: f64,
        /// Mark ECN-capable packets instead of dropping them (RFC 3168
        /// style). Packets from non-ECN transports are still dropped.
        ecn: bool,
    },
}

impl AqmPolicy {
    /// A RED profile sized for a queue of `queue_bytes`: thresholds at
    /// 25% / 75% of capacity, `max_p` 0.1, the literature's `w_q` 0.002.
    pub fn red_for_queue(queue_bytes: u64, ecn: bool) -> Self {
        AqmPolicy::Red {
            min_th: queue_bytes / 4,
            max_th: queue_bytes * 3 / 4,
            max_p: 0.1,
            w_q: 0.002,
            ecn,
        }
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AqmPolicy::DropTail => Ok(()),
            AqmPolicy::Red {
                min_th,
                max_th,
                max_p,
                w_q,
                ..
            } => {
                if min_th >= max_th {
                    return Err(format!(
                        "RED needs min_th < max_th, got {min_th} >= {max_th}"
                    ));
                }
                if !(0.0..=1.0).contains(&max_p) || max_p.is_nan() {
                    return Err(format!("RED max_p must be in [0, 1], got {max_p}"));
                }
                if !(w_q > 0.0 && w_q <= 1.0) {
                    return Err(format!("RED w_q must be in (0, 1], got {w_q}"));
                }
                Ok(())
            }
        }
    }
}

/// Static configuration of a unidirectional path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathConfig {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Maximum extra uniform delay added per packet.
    pub jitter: SimDuration,
    /// Independent per-packet drop probability in `[0, 1]`.
    pub loss: f64,
    /// Serialization rate in bits per second.
    pub rate_bps: u64,
    /// Queue capacity in bytes (backlog beyond what has already been
    /// serialized).
    pub queue_bytes: u64,
    /// Active queue management discipline in front of the queue.
    pub aqm: AqmPolicy,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            delay: SimDuration::from_millis(25),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            rate_bps: 1_000_000_000, // 1 Gbit/s
            queue_bytes: 512 * 1024,
            aqm: AqmPolicy::DropTail,
        }
    }
}

impl PathConfig {
    /// A path with the given one-way delay and defaults elsewhere.
    pub fn with_delay(delay: SimDuration) -> Self {
        PathConfig {
            delay,
            ..PathConfig::default()
        }
    }

    /// Sets the random loss probability (builder-style). An out-of-range
    /// or NaN value is clamped into `[0, 1]` and counted as a rejected
    /// configuration ([`PathConfig::rejected_configs`]) instead of being
    /// accepted silently.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = if p.is_nan() {
            count_rejection();
            0.0
        } else if !(0.0..=1.0).contains(&p) {
            count_rejection();
            p.clamp(0.0, 1.0)
        } else {
            p
        };
        self
    }

    /// Sets the serialization rate (builder-style). A zero rate would
    /// make every serialization time infinite (and the old code divide
    /// by zero), so it is clamped to 1 bit/s and counted as a rejected
    /// configuration.
    pub fn rate_bps(mut self, bps: u64) -> Self {
        self.rate_bps = if bps == 0 {
            count_rejection();
            1
        } else {
            bps
        };
        self
    }

    /// Sets the queue capacity (builder-style).
    pub fn queue_bytes(mut self, bytes: u64) -> Self {
        self.queue_bytes = bytes;
        self
    }

    /// Sets the jitter bound (builder-style).
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the queue discipline (builder-style). Invalid RED parameters
    /// are rejected back to drop-tail with a counted rejection.
    pub fn aqm(mut self, aqm: AqmPolicy) -> Self {
        self.aqm = if aqm.validate().is_ok() {
            aqm
        } else {
            count_rejection();
            AqmPolicy::DropTail
        };
        self
    }

    /// How many times a builder rejected (and clamped) an out-of-range
    /// value process-wide — the observability hook for configuration
    /// bugs that previously passed through silently.
    pub fn rejected_configs() -> u64 {
        CONFIG_REJECTIONS.load(Ordering::Relaxed)
    }

    /// The round-trip time of a symmetric path pair with this one-way
    /// delay (ignores jitter and queueing).
    pub fn base_rtt(&self) -> SimDuration {
        self.delay * 2
    }

    /// Time to serialize `bytes` at this path's rate.
    pub fn serialization_time(&self, bytes: u32) -> SimDuration {
        let ns = (bytes as u128 * 8 * 1_000_000_000) / self.rate_bps.max(1) as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if loss is outside `[0, 1]`,
    /// the rate is zero, or the AQM parameters are out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(format!("loss must be in [0, 1], got {}", self.loss));
        }
        if self.rate_bps == 0 {
            return Err("rate_bps must be positive".into());
        }
        self.aqm.validate()
    }
}

/// Why a packet was lost on a path. [`PathStats::drop_rate`] is
/// exhaustive over this enum — adding a cause without extending the
/// stats breaks compilation, not the accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// Independent random loss (the netem `loss` knob).
    Random,
    /// Drop-tail queue overflow.
    Overflow,
    /// Early drop by the AQM (RED).
    Aqm,
}

impl LossCause {
    /// Every loss cause, in stats order.
    pub const ALL: [LossCause; 3] = [LossCause::Random, LossCause::Overflow, LossCause::Aqm];
}

/// The verdict for a packet offered to a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The packet will be delivered at the given instant.
    Deliver {
        /// Arrival time at the far end.
        arrival: SimTime,
        /// Whether the AQM set the ECN Congestion Experienced mark.
        ecn: bool,
    },
    /// Dropped by random loss.
    LostRandom,
    /// Dropped because the queue was full.
    LostOverflow,
    /// Dropped early by the AQM.
    LostAqm,
}

/// Counters a path accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Packets offered to the path.
    pub offered: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped by random loss.
    pub lost_random: u64,
    /// Packets dropped by queue overflow.
    pub lost_overflow: u64,
    /// Packets dropped early by the AQM.
    pub lost_aqm: u64,
    /// Packets delivered with an ECN Congestion Experienced mark.
    pub marked_ecn: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

impl PathStats {
    /// Packets lost to one cause.
    pub fn lost(&self, cause: LossCause) -> u64 {
        match cause {
            LossCause::Random => self.lost_random,
            LossCause::Overflow => self.lost_overflow,
            LossCause::Aqm => self.lost_aqm,
        }
    }

    /// Total packets lost, summed over every [`LossCause`].
    pub fn lost_total(&self) -> u64 {
        LossCause::ALL.iter().map(|&c| self.lost(c)).sum()
    }

    /// Overall drop fraction, or 0 if nothing was offered. Exhaustive
    /// over [`LossCause`]: a future loss category is included the moment
    /// it exists.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.lost_total() as f64 / self.offered as f64
        }
    }

    /// ECN mark fraction of offered packets, or 0 if nothing was
    /// offered. Marks are congestion signals, not losses — they never
    /// count toward [`PathStats::drop_rate`].
    pub fn mark_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.marked_ecn as f64 / self.offered as f64
        }
    }
}

/// One packet in (or entering) the transmitter: used to decrement the
/// queue byte counter when the packet departs.
#[derive(Debug, Clone, Copy)]
struct QueuedPacket {
    /// When serialization of this packet starts.
    start: SimTime,
    /// When it finishes (departure from the queue).
    departure: SimTime,
    /// Wire bytes.
    bytes: u32,
}

/// Runtime state of a unidirectional path.
#[derive(Debug, Clone)]
pub struct Path {
    config: PathConfig,
    rng: DetRng,
    /// When the transmitter finishes serializing the last admitted packet.
    busy_until: SimTime,
    /// Arrival time of the most recently admitted packet (FIFO clamp).
    last_arrival: SimTime,
    /// Memoized `(wire_bytes, serialization_time(wire_bytes))` for the
    /// common case of one fixed segment size per run — the value is
    /// exactly what [`PathConfig::serialization_time`] returns, just
    /// without redoing the wide division per packet.
    ser_memo: (u32, SimDuration),
    /// Packets admitted but not yet fully serialized, in departure order.
    queue: std::collections::VecDeque<QueuedPacket>,
    /// Sum of `bytes` over `queue` — the integer backlog counter,
    /// decremented as departures are drained.
    queued_bytes: u64,
    /// RED average queue length in bytes (EWMA of the instantaneous
    /// queue at each arrival). Unused (and never updated) for drop-tail.
    avg_queue: f64,
    stats: PathStats,
}

impl Path {
    /// Creates a path with its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`PathConfig::validate`].
    pub fn new(config: PathConfig, rng: DetRng) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid path config: {e}");
        }
        Path {
            config,
            rng,
            busy_until: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            ser_memo: (0, SimDuration::ZERO),
            queue: std::collections::VecDeque::new(),
            queued_bytes: 0,
            avg_queue: 0.0,
            stats: PathStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &PathConfig {
        &self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> PathStats {
        self.stats
    }

    /// Replaces the impairment configuration mid-run (e.g. to congest a
    /// link for a scenario). Queue backlog and counters carry over.
    pub fn reconfigure(&mut self, config: PathConfig) {
        assert!(config.validate().is_ok(), "invalid path config");
        self.config = config;
        self.ser_memo = (0, SimDuration::ZERO);
    }

    /// Current queueing backlog, expressed as time until the transmitter
    /// would go idle.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Drops every packet that has finished serializing by `now` from
    /// the byte counter — the "decrement on departure" half of the
    /// integer accounting.
    fn drain_departures(&mut self, now: SimTime) {
        while let Some(front) = self.queue.front() {
            if front.departure > now {
                break;
            }
            self.queued_bytes -= front.bytes as u64;
            self.queue.pop_front();
        }
    }

    /// Bytes of the head packet already on the wire at `now`, in exact
    /// integer arithmetic (round-half-down, matching the rational value
    /// the old floating-point reconstruction approximated).
    fn head_serialized_bytes(&self, now: SimTime) -> u64 {
        let Some(head) = self.queue.front() else {
            return 0;
        };
        let elapsed = now.saturating_since(head.start).as_nanos() as u128;
        if elapsed == 0 {
            return 0;
        }
        let num = elapsed * self.config.rate_bps as u128 + (4_000_000_000 - 1);
        ((num / 8_000_000_000) as u64).min(head.bytes as u64)
    }

    /// Current queue occupancy in bytes: whole queued packets minus the
    /// serialized portion of the in-flight head. Never computed through
    /// floating point.
    fn backlog_bytes(&self, now: SimTime) -> u64 {
        self.queued_bytes - self.head_serialized_bytes(now)
    }

    /// Offers a queue-occupying packet of `wire_bytes` to the path at
    /// `now`, returning whether and when it arrives. `ect` says whether
    /// the transport is ECN-capable: a RED AQM in marking mode marks
    /// such packets instead of dropping them.
    pub fn admit_ect(&mut self, now: SimTime, wire_bytes: u32, ect: bool) -> Admission {
        self.stats.offered += 1;
        self.drain_departures(now);
        let backlog_bytes = self.backlog_bytes(now);

        // AQM verdict first (RED sits in front of the queue), then the
        // physical drop-tail bound, then random wire loss — so drop-tail
        // paths draw exactly the randomness they always did.
        let mut mark = false;
        if let AqmPolicy::Red {
            min_th,
            max_th,
            max_p,
            w_q,
            ecn,
        } = self.config.aqm
        {
            self.avg_queue = (1.0 - w_q) * self.avg_queue + w_q * backlog_bytes as f64;
            let congested = if self.avg_queue >= max_th as f64 {
                true
            } else if self.avg_queue >= min_th as f64 {
                let p = max_p * (self.avg_queue - min_th as f64) / (max_th - min_th) as f64;
                self.rng.chance(p)
            } else {
                false
            };
            if congested {
                if ecn && ect {
                    mark = true;
                } else {
                    self.stats.lost_aqm += 1;
                    return Admission::LostAqm;
                }
            }
        }
        if backlog_bytes + wire_bytes as u64 > self.config.queue_bytes {
            self.stats.lost_overflow += 1;
            return Admission::LostOverflow;
        }
        if self.rng.chance(self.config.loss) {
            self.stats.lost_random += 1;
            return Admission::LostRandom;
        }
        let start = self.busy_until.max(now);
        if self.ser_memo.0 != wire_bytes {
            self.ser_memo = (wire_bytes, self.config.serialization_time(wire_bytes));
        }
        let departure = start + self.ser_memo.1;
        self.busy_until = departure;
        self.queue.push_back(QueuedPacket {
            start,
            departure,
            bytes: wire_bytes,
        });
        self.queued_bytes += wire_bytes as u64;
        let mut arrival = departure + self.config.delay + self.rng.jitter(self.config.jitter);
        // FIFO: never deliver before a previously admitted packet.
        if arrival < self.last_arrival {
            arrival = self.last_arrival;
        }
        self.last_arrival = arrival;
        self.stats.delivered += 1;
        self.stats.bytes_delivered += wire_bytes as u64;
        if mark {
            self.stats.marked_ecn += 1;
        }
        Admission::Deliver { arrival, ecn: mark }
    }

    /// [`Path::admit_ect`] for a non-ECN transport.
    pub fn admit(&mut self, now: SimTime, wire_bytes: u32) -> Admission {
        self.admit_ect(now, wire_bytes, false)
    }

    /// Offers a control packet (SYN/ACK-sized) that experiences delay and
    /// random loss but never queues. Returns its arrival time, or `None`
    /// if lost.
    pub fn admit_control(&mut self, now: SimTime, lossy: bool) -> Option<SimTime> {
        if lossy && self.rng.chance(self.config.loss) {
            return None;
        }
        let mut arrival = now + self.config.delay + self.rng.jitter(self.config.jitter);
        if arrival < self.last_arrival {
            arrival = self.last_arrival;
        }
        self.last_arrival = arrival;
        Some(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(config: PathConfig) -> Path {
        Path::new(config, DetRng::from_seed(99))
    }

    #[test]
    fn lossless_path_delivers_after_delay_and_serialization() {
        let cfg = PathConfig {
            delay: SimDuration::from_millis(10),
            rate_bps: 8_000_000, // 1 byte/us
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        match p.admit(SimTime::ZERO, 1000) {
            Admission::Deliver { arrival, ecn } => {
                // 1000 bytes at 1 byte/us = 1 ms serialization + 10 ms delay.
                assert_eq!(arrival, SimTime::from_millis(11));
                assert!(!ecn, "drop-tail never marks");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn serialization_serializes_back_to_back() {
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 8_000_000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let a1 = p.admit(SimTime::ZERO, 1000);
        let a2 = p.admit(SimTime::ZERO, 1000);
        let (t1, t2) = match (a1, a2) {
            (Admission::Deliver { arrival: t1, .. }, Admission::Deliver { arrival: t2, .. }) => {
                (t1, t2)
            }
            other => panic!("expected deliveries, got {other:?}"),
        };
        assert_eq!(t2 - t1, SimDuration::from_millis(1));
    }

    #[test]
    fn queue_overflows_drop_tail() {
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 8_000, // 1 byte/ms: glacial
            queue_bytes: 3000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut delivered = 0;
        let mut overflowed = 0;
        for _ in 0..10 {
            match p.admit(SimTime::ZERO, 1000) {
                Admission::Deliver { .. } => delivered += 1,
                Admission::LostOverflow => overflowed += 1,
                other => panic!("unexpected admission {other:?}"),
            }
        }
        assert!(delivered >= 3, "capacity admits at least queue/packet");
        assert!(overflowed >= 6, "the rest overflow");
        assert_eq!(p.stats().lost_overflow, overflowed as u64);
    }

    #[test]
    fn queue_drains_over_time() {
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 8_000_000,
            queue_bytes: 2000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        for _ in 0..2 {
            assert!(matches!(
                p.admit(SimTime::ZERO, 1000),
                Admission::Deliver { .. }
            ));
        }
        assert!(matches!(
            p.admit(SimTime::ZERO, 1000),
            Admission::LostOverflow
        ));
        // After the backlog serializes, admission succeeds again.
        let later = SimTime::from_millis(5);
        assert!(matches!(p.admit(later, 1000), Admission::Deliver { .. }));
    }

    #[test]
    fn boundary_admission_is_byte_exact() {
        // Regression test for the f64 backlog reconstruction. At
        // 4 Gbit/s a byte serializes in 2 ns, so an odd number of
        // remaining nanoseconds corresponds to exactly k + 0.5 bytes —
        // the tie the old `(secs_f64 * rate / 8).round()` path computed
        // through two inexact floating-point roundings. The integer
        // accounting admits a packet that fits to the byte.
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 4_000_000_000,
            queue_bytes: 2000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        // 1000 bytes serialize in 2000 ns.
        assert!(matches!(
            p.admit(SimTime::ZERO, 1000),
            Admission::Deliver { .. }
        ));
        // 1 ns in: 0.5 bytes are gone (rounds half-down to 0 credited),
        // so the backlog is still 1000 bytes and a second 1000-byte
        // packet fits the 2000-byte queue exactly — `1000 + 1000 >
        // 2000` is false in integers, no rounding noise involved.
        let now = SimTime::ZERO + SimDuration::from_nanos(1);
        assert!(
            matches!(p.admit(now, 1000), Admission::Deliver { .. }),
            "packet fitting the queue to the byte must be admitted"
        );
        // A third is over capacity by exactly one byte's worth and must
        // be dropped, not admitted by a rounding wobble.
        let now = SimTime::ZERO + SimDuration::from_nanos(2);
        assert!(matches!(p.admit(now, 1000), Admission::LostOverflow));
    }

    #[test]
    fn integer_backlog_matches_old_float_where_it_was_right() {
        // At the testbed rate (500 Mbit/s, 16 ns/byte) the old f64
        // reconstruction was almost always exact; the integer counter
        // must agree with it decision-for-decision (this is what keeps
        // the golden digests byte-identical).
        let cfg = PathConfig {
            delay: SimDuration::from_millis(1),
            rate_bps: 500_000_000,
            queue_bytes: 6000,
            ..PathConfig::default()
        };
        let mut int_path = path(cfg.clone());
        let float_bytes = |p: &Path, now: SimTime| -> u64 {
            let backlog = p.backlog(now);
            (backlog.as_secs_f64() * cfg.rate_bps as f64 / 8.0).round() as u64
        };
        let mut now = SimTime::ZERO;
        for i in 0..5_000u64 {
            now += SimDuration::from_nanos(3 + (i * 7919) % 40_000);
            let old = float_bytes(&int_path, now);
            int_path.drain_departures(now);
            let new = int_path.backlog_bytes(now);
            assert!(
                old.abs_diff(new) <= 1,
                "counter {new} vs float {old} at {now:?}"
            );
            int_path.admit(now, 1500);
        }
    }

    #[test]
    fn conservation_offered_equals_delivered_plus_lost() {
        let cfg = PathConfig {
            delay: SimDuration::from_millis(2),
            rate_bps: 8_000_000,
            queue_bytes: 4000,
            loss: 0.1,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut now = SimTime::ZERO;
        for i in 0..10_000u64 {
            now += SimDuration::from_micros(i % 300);
            p.admit(now, 1000);
        }
        let s = p.stats();
        assert_eq!(s.offered, s.delivered + s.lost_total(), "{s:?}");
    }

    #[test]
    fn random_loss_rate_is_respected() {
        let cfg = PathConfig {
            loss: 0.2,
            rate_bps: 1_000_000_000_000, // effectively instant
            queue_bytes: u64::MAX,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut lost = 0;
        let n = 20_000;
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            now += SimDuration::from_micros(10);
            if matches!(p.admit(now, 1500), Admission::LostRandom) {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "loss rate {rate} far from 0.2");
    }

    #[test]
    fn jitter_never_reorders() {
        let cfg = PathConfig {
            delay: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(5),
            rate_bps: 1_000_000_000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for _ in 0..500 {
            now += SimDuration::from_micros(50);
            if let Admission::Deliver { arrival, .. } = p.admit(now, 1500) {
                assert!(arrival >= last, "FIFO violated");
                last = arrival;
            }
        }
    }

    #[test]
    fn control_packets_skip_the_queue() {
        let cfg = PathConfig {
            delay: SimDuration::from_millis(50),
            rate_bps: 8_000, // 1 byte/ms — queue would be hopeless
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let arrival = p.admit_control(SimTime::ZERO, false).unwrap();
        assert_eq!(arrival, SimTime::from_millis(50));
    }

    #[test]
    fn stats_drop_rate_is_exhaustive_over_loss_causes() {
        let mut s = PathStats::default();
        assert_eq!(s.drop_rate(), 0.0);
        s.offered = 20;
        s.lost_random = 1;
        s.lost_overflow = 1;
        s.lost_aqm = 2;
        // Lockstep check: an exhaustive match over LossCause must agree
        // with lost_total(). A new enum variant fails to compile here
        // until both the stats field and this sum are extended.
        let by_match: u64 = LossCause::ALL
            .iter()
            .map(|&c| match c {
                LossCause::Random => s.lost_random,
                LossCause::Overflow => s.lost_overflow,
                LossCause::Aqm => s.lost_aqm,
            })
            .sum();
        assert_eq!(by_match, s.lost_total());
        assert!((s.drop_rate() - 0.2).abs() < 1e-12);
        s.marked_ecn = 5;
        assert!((s.mark_rate() - 0.25).abs() < 1e-12);
        assert!(
            (s.drop_rate() - 0.2).abs() < 1e-12,
            "ECN marks are not drops"
        );
    }

    #[test]
    #[should_panic(expected = "invalid path config")]
    fn invalid_loss_panics() {
        // Hand-built (non-builder) configs still hard-fail at Path::new.
        let cfg = PathConfig {
            loss: 1.5,
            ..PathConfig::default()
        };
        let _ = path(cfg);
    }

    #[test]
    fn builder_clamps_out_of_range_loss_with_counted_rejection() {
        // Pre-fix this produced an invalid config silently (loss 1.5
        // stored verbatim, only caught — if ever — at Path::new).
        let before = PathConfig::rejected_configs();
        let cfg = PathConfig::default().loss(1.5);
        assert_eq!(cfg.loss, 1.0, "clamped into [0, 1]");
        let cfg = cfg.loss(-0.25);
        assert_eq!(cfg.loss, 0.0);
        let cfg = cfg.loss(f64::NAN);
        assert_eq!(cfg.loss, 0.0);
        assert!(cfg.validate().is_ok(), "builder output is always valid");
        assert!(
            PathConfig::rejected_configs() >= before + 3,
            "each clamp was counted"
        );
        // In-range values pass through uncounted.
        let calm = PathConfig::rejected_configs();
        let cfg = PathConfig::default().loss(0.3);
        assert_eq!(cfg.loss, 0.3);
        assert_eq!(PathConfig::rejected_configs(), calm);
    }

    #[test]
    fn builder_clamps_zero_rate_with_counted_rejection() {
        // Pre-fix `rate_bps = 0` flowed into `serialization_time`'s
        // division — infinite serialization at best, a divide-by-zero
        // panic in the integer path at worst.
        let before = PathConfig::rejected_configs();
        let cfg = PathConfig::default().rate_bps(0);
        assert_eq!(cfg.rate_bps, 1, "clamped to the minimum rate");
        assert!(cfg.validate().is_ok());
        assert!(PathConfig::rejected_configs() > before);
        // The defensive max(1) also keeps a hand-built zero-rate config
        // from dividing by zero before validation can reject it.
        let raw = PathConfig {
            rate_bps: 0,
            ..PathConfig::default()
        };
        assert!(raw.validate().is_err());
        let _ = raw.serialization_time(1500); // must not panic
    }

    #[test]
    fn red_drops_early_and_counts_aqm_losses() {
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 8_000_000, // 1 byte/us
            queue_bytes: 64_000,
            aqm: AqmPolicy::Red {
                min_th: 2_000,
                max_th: 16_000,
                max_p: 0.2,
                w_q: 0.2,
                ecn: false,
            },
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut aqm_drops = 0;
        let mut overflow = 0;
        let mut now = SimTime::ZERO;
        // Offer far above the drain rate: the average climbs through the
        // RED band and early drops begin well before physical overflow.
        for _ in 0..4_000 {
            now += SimDuration::from_micros(100); // drain 100 B/packet slot
            match p.admit(now, 1000) {
                Admission::LostAqm => aqm_drops += 1,
                Admission::LostOverflow => overflow += 1,
                _ => {}
            }
        }
        assert!(aqm_drops > 0, "RED dropped early: {:?}", p.stats());
        assert_eq!(p.stats().lost_aqm, aqm_drops);
        assert!(
            p.stats().lost_aqm >= overflow,
            "early drops dominate tail drops under RED: {:?}",
            p.stats()
        );
        let s = p.stats();
        assert_eq!(s.offered, s.delivered + s.lost_total());
    }

    #[test]
    fn red_marks_ect_packets_instead_of_dropping() {
        let aqm = AqmPolicy::Red {
            min_th: 2_000,
            max_th: 16_000,
            max_p: 0.2,
            w_q: 0.2,
            ecn: true,
        };
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 8_000_000,
            queue_bytes: 64_000,
            aqm,
            ..PathConfig::default()
        };
        let mut p = path(cfg.clone());
        let mut marks = 0;
        let mut now = SimTime::ZERO;
        for _ in 0..4_000 {
            now += SimDuration::from_micros(100);
            if let Admission::Deliver { ecn: true, .. } = p.admit_ect(now, 1000, true) {
                marks += 1;
            }
        }
        assert!(marks > 0, "ECT packets are marked: {:?}", p.stats());
        assert_eq!(p.stats().marked_ecn, marks);
        assert_eq!(p.stats().lost_aqm, 0, "marking replaced dropping");
        // A non-ECT transport through the same marking AQM is dropped.
        let mut p = path(cfg);
        let mut now = SimTime::ZERO;
        let mut drops = 0;
        for _ in 0..4_000 {
            now += SimDuration::from_micros(100);
            if matches!(p.admit_ect(now, 1000, false), Admission::LostAqm) {
                drops += 1;
            }
        }
        assert!(drops > 0, "non-ECT packets still drop: {:?}", p.stats());
        assert_eq!(p.stats().marked_ecn, 0);
    }

    #[test]
    fn red_below_min_threshold_is_transparent() {
        // A trickle that keeps the average under min_th must behave
        // exactly like drop-tail: no drops, no marks, no extra draws.
        let aqm = AqmPolicy::Red {
            min_th: 50_000,
            max_th: 100_000,
            max_p: 0.1,
            w_q: 0.02,
            ecn: false,
        };
        let cfg = PathConfig {
            delay: SimDuration::from_millis(5),
            rate_bps: 8_000_000,
            queue_bytes: 200_000,
            aqm,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            now += SimDuration::from_millis(2);
            assert!(matches!(p.admit(now, 1000), Admission::Deliver { .. }));
        }
        let s = p.stats();
        assert_eq!(s.lost_total(), 0);
        assert_eq!(s.marked_ecn, 0);
    }

    #[test]
    fn aqm_validation_rejects_bad_parameters() {
        assert!(AqmPolicy::DropTail.validate().is_ok());
        assert!(AqmPolicy::red_for_queue(384 * 1024, true)
            .validate()
            .is_ok());
        let bad = [
            AqmPolicy::Red {
                min_th: 10,
                max_th: 10,
                max_p: 0.1,
                w_q: 0.1,
                ecn: false,
            },
            AqmPolicy::Red {
                min_th: 1,
                max_th: 10,
                max_p: 1.5,
                w_q: 0.1,
                ecn: false,
            },
            AqmPolicy::Red {
                min_th: 1,
                max_th: 10,
                max_p: 0.1,
                w_q: 0.0,
                ecn: false,
            },
        ];
        for aqm in bad {
            assert!(aqm.validate().is_err(), "{aqm:?}");
            // The builder rejects it back to drop-tail, counted.
            let before = PathConfig::rejected_configs();
            let cfg = PathConfig::default().aqm(aqm);
            assert_eq!(cfg.aqm, AqmPolicy::DropTail);
            assert!(PathConfig::rejected_configs() > before);
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        // FIFO survives the whole impairment cross-product: for any
        // jitter magnitude, RED threshold band, marking mode, ECT
        // capability and traffic cadence, delivered arrival times
        // never go backwards, marks appear only when a marking AQM
        // meets an ECN-capable packet, and the packet-conservation
        // ledger still balances.
        proptest! {
            #[test]
            fn fifo_holds_under_jitter_red_and_ecn(
                seed in any::<u64>(),
                jitter_us in 0u64..8_000,
                marking in any::<bool>(),
                ect in any::<bool>(),
                queue_kib in 4u64..64,
                gap_us in 1u64..400,
            ) {
                let queue_bytes = queue_kib * 1024;
                let cfg = PathConfig {
                    delay: SimDuration::from_millis(5),
                    jitter: SimDuration::from_micros(jitter_us),
                    rate_bps: 100_000_000,
                    queue_bytes,
                    aqm: AqmPolicy::red_for_queue(queue_bytes, marking),
                    ..PathConfig::default()
                };
                let mut p = Path::new(cfg, DetRng::from_seed(seed));
                let mut last = SimTime::ZERO;
                let mut now = SimTime::ZERO;
                let mut marks = 0u64;
                for _ in 0..400 {
                    now += SimDuration::from_micros(gap_us);
                    if let Admission::Deliver { arrival, ecn } = p.admit_ect(now, 1500, ect) {
                        prop_assert!(
                            arrival >= last,
                            "FIFO violated: {arrival:?} after {last:?} \
                             (jitter {jitter_us}us, queue {queue_kib}KiB)"
                        );
                        last = arrival;
                        if ecn {
                            marks += 1;
                        }
                    }
                }
                if !(marking && ect) {
                    prop_assert_eq!(marks, 0, "marks without marking AQM + ECT");
                }
                let s = p.stats();
                prop_assert_eq!(s.marked_ecn, marks);
                prop_assert_eq!(s.offered, s.delivered + s.lost_total());
            }
        }
    }
}
