//! Unidirectional network paths with netem-style impairments.
//!
//! A [`Path`] models everything between two PoPs in one direction: a
//! serialization rate, a finite drop-tail queue, fixed propagation delay,
//! optional uniform jitter, and random packet loss. These are exactly the
//! knobs a `tc netem` + `tbf` testbed exposes, which is what a hardware
//! reproduction of the paper would use.
//!
//! Delivery is FIFO: jitter never reorders packets (arrival times are
//! clamped to be non-decreasing), matching netem without its `reorder`
//! option.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Static configuration of a unidirectional path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathConfig {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Maximum extra uniform delay added per packet.
    pub jitter: SimDuration,
    /// Independent per-packet drop probability in `[0, 1]`.
    pub loss: f64,
    /// Serialization rate in bits per second.
    pub rate_bps: u64,
    /// Drop-tail queue capacity in bytes (backlog beyond the packet
    /// currently serializing).
    pub queue_bytes: u64,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            delay: SimDuration::from_millis(25),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            rate_bps: 1_000_000_000, // 1 Gbit/s
            queue_bytes: 512 * 1024,
        }
    }
}

impl PathConfig {
    /// A path with the given one-way delay and defaults elsewhere.
    pub fn with_delay(delay: SimDuration) -> Self {
        PathConfig {
            delay,
            ..PathConfig::default()
        }
    }

    /// Sets the random loss probability (builder-style).
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    /// Sets the serialization rate (builder-style).
    pub fn rate_bps(mut self, bps: u64) -> Self {
        self.rate_bps = bps;
        self
    }

    /// Sets the queue capacity (builder-style).
    pub fn queue_bytes(mut self, bytes: u64) -> Self {
        self.queue_bytes = bytes;
        self
    }

    /// Sets the jitter bound (builder-style).
    pub fn jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// The round-trip time of a symmetric path pair with this one-way
    /// delay (ignores jitter and queueing).
    pub fn base_rtt(&self) -> SimDuration {
        self.delay * 2
    }

    /// Time to serialize `bytes` at this path's rate.
    pub fn serialization_time(&self, bytes: u32) -> SimDuration {
        let ns = (bytes as u128 * 8 * 1_000_000_000) / self.rate_bps as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if loss is outside `[0, 1]` or
    /// the rate is zero.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(format!("loss must be in [0, 1], got {}", self.loss));
        }
        if self.rate_bps == 0 {
            return Err("rate_bps must be positive".into());
        }
        Ok(())
    }
}

/// The verdict for a packet offered to a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The packet will be delivered at the given instant.
    Deliver {
        /// Arrival time at the far end.
        arrival: SimTime,
    },
    /// Dropped by random loss.
    LostRandom,
    /// Dropped because the queue was full.
    LostOverflow,
}

/// Counters a path accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Packets offered to the path.
    pub offered: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped by random loss.
    pub lost_random: u64,
    /// Packets dropped by queue overflow.
    pub lost_overflow: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

impl PathStats {
    /// Overall drop fraction, or 0 if nothing was offered.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.lost_random + self.lost_overflow) as f64 / self.offered as f64
        }
    }
}

/// Runtime state of a unidirectional path.
#[derive(Debug, Clone)]
pub struct Path {
    config: PathConfig,
    rng: DetRng,
    /// When the transmitter finishes serializing the last admitted packet.
    busy_until: SimTime,
    /// Arrival time of the most recently admitted packet (FIFO clamp).
    last_arrival: SimTime,
    /// Memoized `(wire_bytes, serialization_time(wire_bytes))` for the
    /// common case of one fixed segment size per run — the value is
    /// exactly what [`PathConfig::serialization_time`] returns, just
    /// without redoing the wide division per packet.
    ser_memo: (u32, SimDuration),
    stats: PathStats,
}

impl Path {
    /// Creates a path with its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`PathConfig::validate`].
    pub fn new(config: PathConfig, rng: DetRng) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid path config: {e}");
        }
        Path {
            config,
            rng,
            busy_until: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            ser_memo: (0, SimDuration::ZERO),
            stats: PathStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &PathConfig {
        &self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> PathStats {
        self.stats
    }

    /// Replaces the impairment configuration mid-run (e.g. to congest a
    /// link for a scenario). Queue backlog and counters carry over.
    pub fn reconfigure(&mut self, config: PathConfig) {
        assert!(config.validate().is_ok(), "invalid path config");
        self.config = config;
        self.ser_memo = (0, SimDuration::ZERO);
    }

    /// Current queueing backlog, expressed as time until the transmitter
    /// would go idle.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Offers a queue-occupying packet of `wire_bytes` to the path at
    /// `now`, returning whether and when it arrives.
    pub fn admit(&mut self, now: SimTime, wire_bytes: u32) -> Admission {
        self.stats.offered += 1;
        // Drop-tail: reject if the backlog (bytes not yet serialized)
        // already exceeds the queue capacity.
        let backlog = self.busy_until.saturating_since(now);
        let backlog_bytes =
            (backlog.as_secs_f64() * self.config.rate_bps as f64 / 8.0).round() as u64;
        if backlog_bytes + wire_bytes as u64 > self.config.queue_bytes {
            self.stats.lost_overflow += 1;
            return Admission::LostOverflow;
        }
        if self.rng.chance(self.config.loss) {
            self.stats.lost_random += 1;
            return Admission::LostRandom;
        }
        let start = self.busy_until.max(now);
        if self.ser_memo.0 != wire_bytes {
            self.ser_memo = (wire_bytes, self.config.serialization_time(wire_bytes));
        }
        let departure = start + self.ser_memo.1;
        self.busy_until = departure;
        let mut arrival = departure + self.config.delay + self.rng.jitter(self.config.jitter);
        // FIFO: never deliver before a previously admitted packet.
        if arrival < self.last_arrival {
            arrival = self.last_arrival;
        }
        self.last_arrival = arrival;
        self.stats.delivered += 1;
        self.stats.bytes_delivered += wire_bytes as u64;
        Admission::Deliver { arrival }
    }

    /// Offers a control packet (SYN/ACK-sized) that experiences delay and
    /// random loss but never queues. Returns its arrival time, or `None`
    /// if lost.
    pub fn admit_control(&mut self, now: SimTime, lossy: bool) -> Option<SimTime> {
        if lossy && self.rng.chance(self.config.loss) {
            return None;
        }
        let mut arrival = now + self.config.delay + self.rng.jitter(self.config.jitter);
        if arrival < self.last_arrival {
            arrival = self.last_arrival;
        }
        self.last_arrival = arrival;
        Some(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(config: PathConfig) -> Path {
        Path::new(config, DetRng::from_seed(99))
    }

    #[test]
    fn lossless_path_delivers_after_delay_and_serialization() {
        let cfg = PathConfig {
            delay: SimDuration::from_millis(10),
            rate_bps: 8_000_000, // 1 byte/us
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        match p.admit(SimTime::ZERO, 1000) {
            Admission::Deliver { arrival } => {
                // 1000 bytes at 1 byte/us = 1 ms serialization + 10 ms delay.
                assert_eq!(arrival, SimTime::from_millis(11));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn serialization_serializes_back_to_back() {
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 8_000_000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let a1 = p.admit(SimTime::ZERO, 1000);
        let a2 = p.admit(SimTime::ZERO, 1000);
        let (t1, t2) = match (a1, a2) {
            (Admission::Deliver { arrival: t1 }, Admission::Deliver { arrival: t2 }) => (t1, t2),
            other => panic!("expected deliveries, got {other:?}"),
        };
        assert_eq!(t2 - t1, SimDuration::from_millis(1));
    }

    #[test]
    fn queue_overflows_drop_tail() {
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 8_000, // 1 byte/ms: glacial
            queue_bytes: 3000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut delivered = 0;
        let mut overflowed = 0;
        for _ in 0..10 {
            match p.admit(SimTime::ZERO, 1000) {
                Admission::Deliver { .. } => delivered += 1,
                Admission::LostOverflow => overflowed += 1,
                Admission::LostRandom => panic!("no random loss configured"),
            }
        }
        assert!(delivered >= 3, "capacity admits at least queue/packet");
        assert!(overflowed >= 6, "the rest overflow");
        assert_eq!(p.stats().lost_overflow, overflowed as u64);
    }

    #[test]
    fn queue_drains_over_time() {
        let cfg = PathConfig {
            delay: SimDuration::ZERO,
            rate_bps: 8_000_000,
            queue_bytes: 2000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        for _ in 0..2 {
            assert!(matches!(
                p.admit(SimTime::ZERO, 1000),
                Admission::Deliver { .. }
            ));
        }
        assert!(matches!(
            p.admit(SimTime::ZERO, 1000),
            Admission::LostOverflow
        ));
        // After the backlog serializes, admission succeeds again.
        let later = SimTime::from_millis(5);
        assert!(matches!(p.admit(later, 1000), Admission::Deliver { .. }));
    }

    #[test]
    fn random_loss_rate_is_respected() {
        let cfg = PathConfig {
            loss: 0.2,
            rate_bps: 1_000_000_000_000, // effectively instant
            queue_bytes: u64::MAX,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut lost = 0;
        let n = 20_000;
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            now += SimDuration::from_micros(10);
            if matches!(p.admit(now, 1500), Admission::LostRandom) {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "loss rate {rate} far from 0.2");
    }

    #[test]
    fn jitter_never_reorders() {
        let cfg = PathConfig {
            delay: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(5),
            rate_bps: 1_000_000_000,
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for _ in 0..500 {
            now += SimDuration::from_micros(50);
            if let Admission::Deliver { arrival } = p.admit(now, 1500) {
                assert!(arrival >= last, "FIFO violated");
                last = arrival;
            }
        }
    }

    #[test]
    fn control_packets_skip_the_queue() {
        let cfg = PathConfig {
            delay: SimDuration::from_millis(50),
            rate_bps: 8_000, // 1 byte/ms — queue would be hopeless
            ..PathConfig::default()
        };
        let mut p = path(cfg);
        let arrival = p.admit_control(SimTime::ZERO, false).unwrap();
        assert_eq!(arrival, SimTime::from_millis(50));
    }

    #[test]
    fn stats_drop_rate() {
        let mut s = PathStats::default();
        assert_eq!(s.drop_rate(), 0.0);
        s.offered = 10;
        s.lost_random = 1;
        s.lost_overflow = 1;
        assert!((s.drop_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid path config")]
    fn invalid_loss_panics() {
        let _ = path(PathConfig::default().loss(1.5));
    }
}
