//! Connection state: a sender/receiver pair plus transfer bookkeeping.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use crate::config::TcpConfig;
use crate::ids::{ConnId, HostId, PathId, PopId, TransferId};
use crate::packet::SegIndex;
use crate::tcp::{Receiver, Sender};
use crate::time::SimTime;

/// Lifecycle of a simulated connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// SYN sent, waiting for the handshake to complete.
    Connecting,
    /// Handshake done; data may flow.
    Established,
    /// Closed by the application; no further activity.
    Closed,
}

/// A transfer the application requested before the handshake finished.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingTransfer {
    pub id: TransferId,
    pub bytes: u64,
    pub requested_at: SimTime,
}

/// A transfer currently riding the connection's byte stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActiveTransfer {
    pub id: TransferId,
    pub bytes: u64,
    /// Stream position (in segments) at which this transfer is complete.
    pub end_seq: SegIndex,
    pub requested_at: SimTime,
    pub started_at: SimTime,
    /// Whether the connection was opened for this transfer (no reuse).
    pub fresh_connection: bool,
}

/// One TCP connection between two simulated hosts.
///
/// Owned and driven by the [`crate::world::World`]; user code refers to it
/// by [`ConnId`] and observes it through
/// [`crate::stats::ConnStats`].
#[derive(Debug)]
pub struct Connection {
    pub(crate) id: ConnId,
    pub(crate) src: HostId,
    pub(crate) dst: HostId,
    pub(crate) src_pop: PopId,
    pub(crate) dst_pop: PopId,
    /// The path `src_pop → dst_pop`, resolved once at open time — path ids
    /// are stable for the life of a PoP pair, so the per-packet hot path
    /// skips the world's path-index lookup.
    pub(crate) fwd_path: PathId,
    /// The reverse path `dst_pop → src_pop` (ACKs, SYN-ACKs).
    pub(crate) rev_path: PathId,
    pub(crate) src_addr: Ipv4Addr,
    pub(crate) dst_addr: Ipv4Addr,
    pub(crate) state: ConnState,
    pub(crate) opened_at: SimTime,
    pub(crate) established_at: Option<SimTime>,
    pub(crate) sender: Sender,
    pub(crate) receiver: Receiver,
    pub(crate) pending: VecDeque<PendingTransfer>,
    pub(crate) active: VecDeque<ActiveTransfer>,
    pub(crate) initial_cwnd: u32,
}

impl Connection {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the wire 5-tuple + policy
    pub(crate) fn new(
        id: ConnId,
        src: HostId,
        dst: HostId,
        src_pop: PopId,
        dst_pop: PopId,
        fwd_path: PathId,
        rev_path: PathId,
        src_addr: Ipv4Addr,
        dst_addr: Ipv4Addr,
        initial_cwnd: u32,
        initial_ssthresh: u32,
        cfg: &TcpConfig,
        now: SimTime,
    ) -> Self {
        Connection {
            id,
            src,
            dst,
            src_pop,
            dst_pop,
            fwd_path,
            rev_path,
            src_addr,
            dst_addr,
            state: ConnState::Connecting,
            opened_at: now,
            established_at: None,
            sender: Sender::with_ssthresh(cfg, initial_cwnd, initial_ssthresh, now),
            receiver: Receiver::new(id, cfg),
            pending: VecDeque::new(),
            active: VecDeque::new(),
            initial_cwnd,
        }
    }

    /// Whether the connection is established with nothing queued or in
    /// flight — i.e. reusable for a new transfer without waiting.
    pub fn is_idle(&self) -> bool {
        self.state == ConnState::Established
            && self.sender.all_acked()
            && self.pending.is_empty()
            && self.active.is_empty()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        self.state
    }
}
