//! Per-connection event tracing.
//!
//! A simulator is only as trustworthy as your ability to see what it
//! did. Tracing can be enabled per connection; the world then records
//! every wire-level event the connection participates in, timestamped,
//! in order. Traces are the ground truth behind the TCP behaviour tests
//! and invaluable when a workload behaves unexpectedly.

use crate::packet::SegIndex;
use crate::time::SimTime;

/// One traced wire/timer event on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The handshake completed; data may flow.
    Established {
        /// When.
        at: SimTime,
    },
    /// A data segment left the sender.
    SegmentSent {
        /// When.
        at: SimTime,
        /// Stream position.
        seq: SegIndex,
        /// Whether it was a retransmission.
        retransmit: bool,
    },
    /// A data segment was dropped by the path.
    SegmentDropped {
        /// When.
        at: SimTime,
        /// Stream position.
        seq: SegIndex,
        /// `true` = queue overflow, `false` = random loss.
        overflow: bool,
    },
    /// A data segment reached the receiver.
    SegmentDelivered {
        /// When.
        at: SimTime,
        /// Stream position.
        seq: SegIndex,
    },
    /// A cumulative ACK reached the sender.
    AckDelivered {
        /// When.
        at: SimTime,
        /// Acknowledged frontier.
        cum_ack: SegIndex,
        /// Sender congestion window after processing, in segments.
        cwnd_after: u32,
    },
    /// The retransmission timer fired (and was current).
    RtoFired {
        /// When.
        at: SimTime,
    },
    /// A transfer completed.
    TransferCompleted {
        /// When.
        at: SimTime,
        /// Payload size.
        bytes: u64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Established { at }
            | TraceEvent::SegmentSent { at, .. }
            | TraceEvent::SegmentDropped { at, .. }
            | TraceEvent::SegmentDelivered { at, .. }
            | TraceEvent::AckDelivered { at, .. }
            | TraceEvent::RtoFired { at }
            | TraceEvent::TransferCompleted { at, .. } => at,
        }
    }
}

/// An ordered trace of one connection's events.
#[derive(Debug, Clone, Default)]
pub struct ConnTrace {
    events: Vec<TraceEvent>,
}

impl ConnTrace {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of sent segments (including retransmissions).
    pub fn segments_sent(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SegmentSent { .. }))
            .count()
    }

    /// Count of dropped segments.
    pub fn segments_dropped(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SegmentDropped { .. }))
            .count()
    }

    /// Renders a human-readable log, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let line = match *e {
                TraceEvent::Established { at } => format!("{at} ESTABLISHED"),
                TraceEvent::SegmentSent {
                    at,
                    seq,
                    retransmit,
                } => format!(
                    "{at} SEND seq={seq}{}",
                    if retransmit { " (retransmit)" } else { "" }
                ),
                TraceEvent::SegmentDropped { at, seq, overflow } => format!(
                    "{at} DROP seq={seq} ({})",
                    if overflow {
                        "queue overflow"
                    } else {
                        "random loss"
                    }
                ),
                TraceEvent::SegmentDelivered { at, seq } => {
                    format!("{at} DELIVER seq={seq}")
                }
                TraceEvent::AckDelivered {
                    at,
                    cum_ack,
                    cwnd_after,
                } => format!("{at} ACK cum={cum_ack} cwnd={cwnd_after}"),
                TraceEvent::RtoFired { at } => format!("{at} RTO"),
                TraceEvent::TransferCompleted { at, bytes } => {
                    format!("{at} COMPLETE bytes={bytes}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_render() {
        let mut t = ConnTrace::default();
        assert!(t.is_empty());
        t.push(TraceEvent::Established {
            at: SimTime::from_millis(50),
        });
        t.push(TraceEvent::SegmentSent {
            at: SimTime::from_millis(51),
            seq: 0,
            retransmit: false,
        });
        t.push(TraceEvent::SegmentDropped {
            at: SimTime::from_millis(51),
            seq: 1,
            overflow: false,
        });
        t.push(TraceEvent::SegmentSent {
            at: SimTime::from_millis(200),
            seq: 1,
            retransmit: true,
        });
        assert_eq!(t.len(), 4);
        assert_eq!(t.segments_sent(), 2);
        assert_eq!(t.segments_dropped(), 1);
        let log = t.render();
        assert!(log.contains("SEND seq=0"));
        assert!(log.contains("(retransmit)"));
        assert!(log.contains("random loss"));
    }

    #[test]
    fn timestamps_accessible() {
        let e = TraceEvent::RtoFired {
            at: SimTime::from_secs(3),
        };
        assert_eq!(e.at(), SimTime::from_secs(3));
    }
}
