//! TCP stack configuration for simulated hosts.

use crate::time::SimDuration;

/// Which congestion-control algorithm a sender runs after the initial
/// window is consumed.
///
/// The paper's deployment uses Linux's default CUBIC; Reno is provided as
/// the classical baseline and for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CcAlgorithm {
    /// TCP CUBIC window growth (Linux default since 2.6.19).
    #[default]
    Cubic,
    /// Classic AIMD Reno/NewReno growth.
    Reno,
    /// BBR-like pacing-based control: a bandwidth × RTT model with a
    /// pacing-gain cycle instead of loss-driven AIMD.
    Paced,
}

/// Host-wide TCP parameters, mirroring the Linux sysctls relevant to the
/// paper.
///
/// Construct with [`TcpConfig::default`] and adjust fields; all fields are
/// public plain data in the C-struct spirit.
///
/// # Examples
///
/// ```
/// use riptide_simnet::config::TcpConfig;
///
/// let mut cfg = TcpConfig::default();
/// cfg.initial_cwnd = 10;     // the Linux default the paper works around
/// cfg.initial_rwnd = 1000;   // raised so initcwnd bursts are never rwnd-bound
/// assert!(cfg.initial_rwnd >= cfg.initial_cwnd);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment size in payload bytes (1448 for 1500-byte MTU
    /// Ethernet with timestamps, the figure the paper's 15 KB ≈ 10-segment
    /// arithmetic implies).
    pub mss: u32,
    /// Per-segment wire overhead (IP + TCP headers), bytes.
    pub header_bytes: u32,
    /// Default initial congestion window in segments when no route
    /// attribute overrides it (`10` per RFC 6928 / the paper).
    pub initial_cwnd: u32,
    /// Initial receive window advertised by receivers, in segments.
    ///
    /// §III-C: this must be at least the largest initcwnd a Riptide sender
    /// may use (`c_max`), otherwise the first burst stalls on flow control.
    pub initial_rwnd: u32,
    /// Cap on the receive window as autotuning grows it, in segments.
    pub max_rwnd: u32,
    /// Initial slow-start threshold, in segments (effectively "infinite" by
    /// default, as in Linux without metric caching).
    pub initial_ssthresh: u32,
    /// Lower bound on the retransmission timeout (Linux: 200 ms).
    pub rto_min: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub rto_max: SimDuration,
    /// RTO to use before any RTT sample exists (RFC 6298: 1 s).
    pub rto_initial: SimDuration,
    /// Congestion-control algorithm.
    pub cc: CcAlgorithm,
    /// If `true`, receivers delay ACKs: every second full segment is
    /// acknowledged immediately, a lone segment only after
    /// [`TcpConfig::delayed_ack_timeout`] (RFC 1122 §4.2.3.2, Linux
    /// "quickack off" steady state). Out-of-order and duplicate segments
    /// are always acknowledged immediately. The paper's §II-B model
    /// assumes this off; the ablation bench quantifies the difference.
    pub delayed_ack: bool,
    /// How long a receiver holds a lone unacknowledged segment before
    /// acking anyway (Linux: 40 ms).
    pub delayed_ack_timeout: SimDuration,
    /// If `true`, receivers attach RFC 2018 selective-acknowledgement
    /// blocks to their ACKs and senders run SACK-based loss recovery
    /// (simplified RFC 6675 hole-filling) instead of NewReno. Off by
    /// default so the baseline reproduction matches the NewReno model
    /// documented in DESIGN.md; the ablation harness flips it.
    pub sack: bool,
    /// If `true`, each host caches the slow-start threshold recorded at
    /// loss events per destination and seeds new connections with it —
    /// Linux's `tcp_metrics` (default `tcp_no_metrics_save=0`). This is
    /// the mechanism that keeps production windows from re-probing the
    /// whole path capacity on every connection, and it moderates the
    /// window distributions of the paper's Fig. 10/11.
    pub metrics_cache: bool,
    /// If `true`, an idle period longer than one RTO collapses cwnd back to
    /// the initial window (Linux `tcp_slow_start_after_idle=1`).
    ///
    /// The paper's premise — reused connections retain their learned window
    /// — corresponds to CDN practice of disabling this; the default here is
    /// therefore `false`, and the control/ablation experiments flip it.
    pub slow_start_after_idle: bool,
    /// Multiplicative window reduction applied on a fast-retransmit loss
    /// event (0.7 for CUBIC, 0.5 for Reno). Set automatically from `cc` by
    /// [`TcpConfig::default`]; override for ablations.
    pub loss_beta: f64,
    /// If `true`, hosts negotiate ECN (RFC 3168): data segments are sent
    /// ECN-capable, AQMs in marking mode mark instead of dropping them,
    /// receivers echo ECE, and senders cut cwnd once per RTT on the echo
    /// without retransmitting. Off by default (`tcp_ecn=0`-ish), which
    /// keeps every existing scenario bit-identical.
    pub ecn: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            header_bytes: 52,
            initial_cwnd: 10,
            initial_rwnd: 1000,
            max_rwnd: 4096,
            initial_ssthresh: u32::MAX,
            delayed_ack: false,
            delayed_ack_timeout: SimDuration::from_millis(40),
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(120),
            rto_initial: SimDuration::from_secs(1),
            cc: CcAlgorithm::Cubic,
            sack: false,
            metrics_cache: true,
            slow_start_after_idle: false,
            loss_beta: 0.7,
            ecn: false,
        }
    }
}

impl TcpConfig {
    /// A config running Reno with its classical halving on loss.
    pub fn reno() -> Self {
        TcpConfig {
            cc: CcAlgorithm::Reno,
            loss_beta: 0.5,
            ..TcpConfig::default()
        }
    }

    /// Bytes a segment occupies on the wire.
    pub fn wire_bytes(&self) -> u32 {
        self.mss + self.header_bytes
    }

    /// Number of MSS-sized segments needed to carry `bytes` of payload.
    pub fn segments_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mss as u64)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency
    /// found (zero MSS, rwnd smaller than cwnd, inverted RTO bounds, or a
    /// `loss_beta` outside `(0, 1)`).
    pub fn validate(&self) -> Result<(), String> {
        if self.mss == 0 {
            return Err("mss must be positive".into());
        }
        if self.initial_cwnd == 0 {
            return Err("initial_cwnd must be positive".into());
        }
        if self.initial_rwnd < self.initial_cwnd {
            return Err(format!(
                "initial_rwnd ({}) must be >= initial_cwnd ({}) or first bursts stall",
                self.initial_rwnd, self.initial_cwnd
            ));
        }
        if self.max_rwnd < self.initial_rwnd {
            return Err("max_rwnd must be >= initial_rwnd".into());
        }
        if self.rto_min > self.rto_max {
            return Err("rto_min must be <= rto_max".into());
        }
        if !(self.loss_beta > 0.0 && self.loss_beta < 1.0) {
            return Err(format!(
                "loss_beta must be in (0, 1), got {}",
                self.loss_beta
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_linux_like() {
        let cfg = TcpConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.initial_cwnd, 10);
        assert_eq!(cfg.cc, CcAlgorithm::Cubic);
        assert!((cfg.loss_beta - 0.7).abs() < 1e-12);
    }

    #[test]
    fn reno_preset() {
        let cfg = TcpConfig::reno();
        cfg.validate().unwrap();
        assert_eq!(cfg.cc, CcAlgorithm::Reno);
        assert!((cfg.loss_beta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn segments_for_rounds_up() {
        let cfg = TcpConfig::default();
        assert_eq!(cfg.segments_for(0), 0);
        assert_eq!(cfg.segments_for(1), 1);
        assert_eq!(cfg.segments_for(1448), 1);
        assert_eq!(cfg.segments_for(1449), 2);
        // The paper's "15KB fits in 10 segments" arithmetic.
        assert!(cfg.segments_for(15 * 1000) <= 11);
        assert_eq!(cfg.segments_for(100 * 1000), 70);
    }

    #[test]
    fn validation_catches_rwnd_smaller_than_cwnd() {
        let cfg = TcpConfig {
            initial_cwnd: 100,
            initial_rwnd: 10,
            ..TcpConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("initial_rwnd"));
    }

    #[test]
    fn validation_catches_bad_beta() {
        let cfg = TcpConfig {
            loss_beta: 1.0,
            ..TcpConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_mss() {
        let cfg = TcpConfig {
            mss: 0,
            ..TcpConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
