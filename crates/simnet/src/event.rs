//! Deterministic discrete-event queue.
//!
//! A thin priority queue over `(SimTime, sequence)` pairs. Two events
//! scheduled for the same instant pop in the order they were scheduled, so a
//! simulation run is a pure function of its inputs and RNG seed — never of
//! hash-map iteration order or heap tie-breaking accidents.
//!
//! # Layout
//!
//! Payloads live in a slab (`slots`) and the binary heap orders 24-byte
//! `(SimTime, seq, slot)` index entries, so heap sift operations move three
//! words instead of a full event payload. Freed slots are recycled through a
//! free list, so a steady-state run stops allocating once the queue has
//! reached its high-water mark. The pop order is a pure function of
//! `(at, seq)` — the slab index never participates in comparisons — which
//! keeps the ordering contract identical to the original payload-in-heap
//! layout.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A heap entry: fires the payload in `slot` at `at`.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use riptide_simnet::event::EventQueue;
/// use riptide_simnet::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled>,
    /// Payload slab indexed by `Scheduled::slot`; `None` marks a free slot.
    slots: Vec<Option<E>>,
    /// Recycled slab indices.
    free: Vec<u32>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// Events at equal instants fire in scheduling order.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab full");
                self.slots.push(Some(payload));
                slot
            }
        };
        self.heap.push(Scheduled { at, seq, slot });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        let payload = self.slots[s.slot as usize]
            .take()
            .expect("scheduled slot holds a payload");
        self.free.push(s.slot);
        Some((s.at, payload))
    }

    /// The instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for throughput accounting).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_millis(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_millis(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn len_and_totals_track() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn slots_are_recycled_after_pop() {
        // Interleaved schedule/pop must not grow the slab past the
        // high-water mark of concurrently pending events.
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            q.schedule(SimTime::from_millis(round), round);
            q.schedule(SimTime::from_millis(round), round + 1);
            let (_, v) = q.pop().unwrap();
            assert_eq!(v, round);
            q.pop().unwrap();
        }
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2000);
        assert!(
            q.slots.len() <= 2,
            "slab bounded by peak pending events, got {}",
            q.slots.len()
        );
    }

    #[test]
    fn clone_preserves_pending_order() {
        let mut q = EventQueue::new();
        for i in (0..50).rev() {
            q.schedule(SimTime::from_millis(i), i);
        }
        let mut c = q.clone();
        let a: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let b: Vec<u64> = std::iter::from_fn(|| c.pop().map(|(_, e)| e)).collect();
        assert_eq!(a, b);
    }
}
