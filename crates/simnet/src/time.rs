//! Simulated-time newtypes.
//!
//! The simulator uses a discrete virtual clock with nanosecond resolution.
//! [`SimTime`] is an instant on that clock (nanoseconds since simulation
//! start) and [`SimDuration`] is a span between two instants. Both are thin
//! wrappers over `u64`, so they are `Copy` and cheap to pass around, while
//! preventing accidental mixing of instants and spans
//! (the classic units bug).
//!
//! # Examples
//!
//! ```
//! use riptide_simnet::time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_millis(125);
//! assert_eq!(later - start, SimDuration::from_millis(125));
//! assert_eq!(later.as_secs_f64(), 0.125);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinitely far"
    /// sentinel for timers that are not armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `secs` seconds after simulation start,
    /// saturating to [`SimTime::MAX`] if the nanosecond count would
    /// overflow `u64`.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000_000))
    }

    /// Creates an instant `ms` milliseconds after simulation start,
    /// saturating to [`SimTime::MAX`] on overflow.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (lossy for huge values).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds, saturating to the maximum
    /// representable span on overflow.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Creates a span from milliseconds, saturating on overflow.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Creates a span from whole seconds, saturating on overflow.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the span by a float factor (rounds to nearest nanosecond).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn instant_plus_duration() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(25);
        assert_eq!(t, SimTime::from_millis(125));
    }

    #[test]
    fn instant_difference() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(250);
        assert_eq!(b - a, SimDuration::from_millis(150));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
        assert_eq!(
            d.saturating_mul(u64::MAX),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn constructors_saturate_instead_of_wrapping() {
        // Before the fix these silently wrapped: e.g. u64::MAX seconds
        // times 1e9 truncates to a small instant in release builds.
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime::MAX);
        assert_eq!(
            SimDuration::from_micros(u64::MAX),
            SimDuration::from_nanos(u64::MAX)
        );
        assert_eq!(
            SimDuration::from_millis(u64::MAX),
            SimDuration::from_nanos(u64::MAX)
        );
        assert_eq!(
            SimDuration::from_secs(u64::MAX),
            SimDuration::from_nanos(u64::MAX)
        );
        // The largest exactly-representable inputs still convert exactly.
        let max_secs = u64::MAX / 1_000_000_000;
        assert_eq!(
            SimTime::from_secs(max_secs).as_nanos(),
            max_secs * 1_000_000_000
        );
        assert_eq!(
            SimDuration::from_secs(max_secs).as_nanos(),
            max_secs * 1_000_000_000
        );
        // One past the boundary saturates rather than wrapping.
        assert_eq!(SimTime::from_secs(max_secs + 1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(max_secs + 1),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
