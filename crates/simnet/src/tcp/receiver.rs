//! The receiving half of a simulated TCP connection.
//!
//! Tracks the cumulative in-order frontier plus an out-of-order set, and
//! answers data segments with cumulative ACKs carrying the current
//! advertised receive window. The receive window starts at the configured
//! `initrwnd` and autotunes upward with received traffic — faster than the
//! sender's window can grow, as §III-C describes, unless an experiment
//! deliberately configures it small.
//!
//! With [`TcpConfig::delayed_ack`] set, the receiver follows RFC 1122
//! delayed acknowledgements: every second in-order segment is acked
//! immediately, a lone segment only when the delayed-ack timer fires;
//! out-of-order and duplicate segments always trigger an immediate ACK
//! (they carry loss signals the sender needs now).

use std::collections::BTreeSet;

use crate::config::TcpConfig;
use crate::ids::ConnId;
use crate::packet::{Ack, SackBlocks, SegIndex};

/// What the receiver wants done after accepting a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckDecision {
    /// Send this acknowledgement now.
    Immediate(Ack),
    /// Hold the acknowledgement; fire the delayed-ack timer at the
    /// transport's configured timeout with this epoch.
    Deferred {
        /// Epoch the timer must present to [`Receiver::on_delack_timer`].
        epoch: u64,
    },
}

/// The receiving half of one TCP connection.
#[derive(Debug, Clone)]
pub struct Receiver {
    conn: ConnId,
    /// Every segment with index `< cum` has been received.
    cum: SegIndex,
    /// Received segments above the frontier (holes below them).
    out_of_order: BTreeSet<SegIndex>,
    /// Currently advertised window, in segments.
    rwnd: u32,
    max_rwnd: u32,
    delayed_ack: bool,
    sack: bool,
    /// In-order segments accepted since the last ACK left.
    unacked: u32,
    /// Whether an ACK is being withheld.
    pending: bool,
    /// Invalidates stale delayed-ack timers.
    epoch: u64,
    /// A Congestion Experienced mark arrived since the last ACK left;
    /// echo ECE on the next acknowledgement (one-shot — this simulator
    /// does not model the full CWR handshake).
    ece_pending: bool,
    segments_received: u64,
    duplicates_received: u64,
}

impl Receiver {
    /// Creates a receiver advertising `cfg.initial_rwnd`.
    pub fn new(conn: ConnId, cfg: &TcpConfig) -> Self {
        Receiver {
            conn,
            cum: 0,
            out_of_order: BTreeSet::new(),
            rwnd: cfg.initial_rwnd,
            max_rwnd: cfg.max_rwnd,
            delayed_ack: cfg.delayed_ack,
            sack: cfg.sack,
            unacked: 0,
            pending: false,
            epoch: 0,
            ece_pending: false,
            segments_received: 0,
            duplicates_received: 0,
        }
    }

    /// The in-order frontier: every segment below this is held.
    pub fn cum_received(&self) -> SegIndex {
        self.cum
    }

    /// The currently advertised receive window, in segments.
    pub fn rwnd(&self) -> u32 {
        self.rwnd
    }

    /// Count of segments that arrived already-held (go-back-N duplicates).
    pub fn duplicates_received(&self) -> u64 {
        self.duplicates_received
    }

    /// Whether an acknowledgement is currently withheld.
    pub fn has_pending_ack(&self) -> bool {
        self.pending
    }

    fn current_ack(&mut self) -> Ack {
        let ece = self.ece_pending;
        self.ece_pending = false;
        Ack {
            conn: self.conn,
            cum_ack: self.cum,
            rwnd: self.rwnd,
            sack: self.sack_blocks(),
            ece,
        }
    }

    /// Coalesces the out-of-order set into SACK ranges, highest (most
    /// recently useful) first, capped at the option-space limit.
    fn sack_blocks(&self) -> SackBlocks {
        let mut blocks = SackBlocks::EMPTY;
        if !self.sack || self.out_of_order.is_empty() {
            return blocks;
        }
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &seq in &self.out_of_order {
            match ranges.last_mut() {
                Some((_, end)) if *end == seq => *end = seq + 1,
                _ => ranges.push((seq, seq + 1)),
            }
        }
        for &(start, end) in ranges.iter().rev().take(crate::packet::MAX_SACK_BLOCKS) {
            blocks.push(start, end);
        }
        blocks
    }

    fn emit_now(&mut self) -> AckDecision {
        self.pending = false;
        self.unacked = 0;
        self.epoch += 1; // cancel any armed delayed-ack timer
        AckDecision::Immediate(self.current_ack())
    }

    /// Accepts a data segment and decides how to acknowledge it.
    pub fn on_segment(&mut self, seq: SegIndex) -> AckDecision {
        self.on_segment_ecn(seq, false)
    }

    /// [`Receiver::on_segment`] for a segment that may carry an ECN
    /// Congestion Experienced mark. A marked segment forces an
    /// immediate ACK carrying ECE — the sender needs the congestion
    /// signal now, like a dup-ack.
    pub fn on_segment_ecn(&mut self, seq: SegIndex, ecn: bool) -> AckDecision {
        if ecn {
            self.ece_pending = true;
        }
        let duplicate = seq < self.cum || self.out_of_order.contains(&seq);
        if duplicate {
            self.duplicates_received += 1;
            // Duplicates signal spurious retransmission — ack immediately.
            return self.emit_now();
        }
        self.segments_received += 1;
        if seq == self.cum {
            // In-order arrival (the common case): advance the frontier
            // directly, touching the out-of-order tree only if it might
            // hold the continuation of the run.
            self.cum += 1;
            while !self.out_of_order.is_empty() && self.out_of_order.remove(&self.cum) {
                self.cum += 1;
            }
        } else {
            // Above the frontier with a hole below: park it.
            self.out_of_order.insert(seq);
        }
        // Receive-window autotuning: grow with received traffic, two
        // segments per segment, so it outpaces the sender's window.
        self.rwnd = self.rwnd.saturating_add(2).min(self.max_rwnd);

        let gap = !self.out_of_order.is_empty();
        if gap {
            // A hole exists: the sender needs dup-acks immediately
            // (RFC 5681 §4.2).
            return self.emit_now();
        }
        self.unacked += 1;
        if ecn || !self.delayed_ack || self.unacked >= 2 {
            return self.emit_now();
        }
        self.pending = true;
        AckDecision::Deferred { epoch: self.epoch }
    }

    /// Handles a delayed-ack timer firing. Returns the withheld ACK if
    /// the timer is still current and an ACK is still pending.
    pub fn on_delack_timer(&mut self, epoch: u64) -> Option<Ack> {
        if !self.pending || epoch != self.epoch {
            return None;
        }
        self.pending = false;
        self.unacked = 0;
        self.epoch += 1;
        Some(self.current_ack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> Receiver {
        Receiver::new(ConnId::from_index(0), &TcpConfig::default())
    }

    fn rx_delack() -> Receiver {
        let cfg = TcpConfig {
            delayed_ack: true,
            ..TcpConfig::default()
        };
        Receiver::new(ConnId::from_index(0), &cfg)
    }

    /// Unwraps an immediate decision (quickack mode always acks now).
    fn imm(d: AckDecision) -> Ack {
        match d {
            AckDecision::Immediate(a) => a,
            AckDecision::Deferred { .. } => panic!("expected immediate ack, got deferred"),
        }
    }

    #[test]
    fn in_order_advances_frontier() {
        let mut r = rx();
        assert_eq!(imm(r.on_segment(0)).cum_ack, 1);
        assert_eq!(imm(r.on_segment(1)).cum_ack, 2);
        assert_eq!(imm(r.on_segment(2)).cum_ack, 3);
        assert_eq!(r.cum_received(), 3);
    }

    #[test]
    fn hole_produces_duplicate_acks() {
        let mut r = rx();
        assert_eq!(imm(r.on_segment(0)).cum_ack, 1);
        // Segment 1 lost; 2, 3, 4 arrive.
        assert_eq!(imm(r.on_segment(2)).cum_ack, 1);
        assert_eq!(imm(r.on_segment(3)).cum_ack, 1);
        assert_eq!(imm(r.on_segment(4)).cum_ack, 1);
        // The retransmitted hole fills everything at once.
        assert_eq!(imm(r.on_segment(1)).cum_ack, 5);
    }

    #[test]
    fn duplicates_are_counted_not_double_delivered() {
        let mut r = rx();
        r.on_segment(0);
        r.on_segment(0);
        assert_eq!(r.duplicates_received(), 1);
        assert_eq!(r.cum_received(), 1);
        // Out-of-order duplicate as well.
        r.on_segment(5);
        r.on_segment(5);
        assert_eq!(r.duplicates_received(), 2);
    }

    #[test]
    fn rwnd_grows_with_traffic_and_caps() {
        let cfg = TcpConfig {
            initial_rwnd: 10,
            max_rwnd: 20,
            ..TcpConfig::default()
        };
        let mut r = Receiver::new(ConnId::from_index(1), &cfg);
        assert_eq!(r.rwnd(), 10);
        for i in 0..3 {
            r.on_segment(i);
        }
        assert_eq!(r.rwnd(), 16);
        for i in 3..50 {
            r.on_segment(i);
        }
        assert_eq!(r.rwnd(), 20, "capped at max_rwnd");
    }

    #[test]
    fn duplicate_does_not_grow_rwnd() {
        let cfg = TcpConfig {
            initial_rwnd: 10,
            max_rwnd: 100,
            ..TcpConfig::default()
        };
        let mut r = Receiver::new(ConnId::from_index(1), &cfg);
        r.on_segment(0);
        let w = r.rwnd();
        r.on_segment(0);
        assert_eq!(r.rwnd(), w);
    }

    #[test]
    fn quickack_mode_never_defers() {
        let mut r = rx();
        for i in 0..20 {
            assert!(matches!(r.on_segment(i), AckDecision::Immediate(_)));
        }
    }

    #[test]
    fn delack_defers_lone_segment_acks_second() {
        let mut r = rx_delack();
        let d = r.on_segment(0);
        assert!(
            matches!(d, AckDecision::Deferred { .. }),
            "first held: {d:?}"
        );
        assert!(r.has_pending_ack());
        // Second in-order segment: ack both at once.
        let a = imm(r.on_segment(1));
        assert_eq!(a.cum_ack, 2);
        assert!(!r.has_pending_ack());
    }

    #[test]
    fn delack_timer_flushes_pending() {
        let mut r = rx_delack();
        let epoch = match r.on_segment(0) {
            AckDecision::Deferred { epoch } => epoch,
            other => panic!("expected deferred, got {other:?}"),
        };
        let ack = r.on_delack_timer(epoch).expect("pending ack released");
        assert_eq!(ack.cum_ack, 1);
        assert!(r.on_delack_timer(epoch).is_none(), "timer consumed");
    }

    #[test]
    fn stale_delack_timer_is_ignored() {
        let mut r = rx_delack();
        let epoch = match r.on_segment(0) {
            AckDecision::Deferred { epoch } => epoch,
            other => panic!("expected deferred, got {other:?}"),
        };
        // The second segment acked immediately — the timer is stale.
        imm(r.on_segment(1));
        assert!(r.on_delack_timer(epoch).is_none());
    }

    #[test]
    fn sack_blocks_describe_the_out_of_order_set() {
        let cfg = TcpConfig {
            sack: true,
            ..TcpConfig::default()
        };
        let mut r = Receiver::new(ConnId::from_index(0), &cfg);
        imm(r.on_segment(0));
        // Holes at 1 and 4: receiver holds {2,3} and {5}.
        let a = imm(r.on_segment(2));
        assert_eq!(a.sack.iter().collect::<Vec<_>>(), vec![(2, 3)]);
        imm(r.on_segment(3));
        let a = imm(r.on_segment(5));
        let blocks: Vec<_> = a.sack.iter().collect();
        assert_eq!(blocks, vec![(5, 6), (2, 4)], "highest range first");
        // Filling hole 1 merges the first range into the frontier.
        let a = imm(r.on_segment(1));
        assert_eq!(a.cum_ack, 4);
        assert_eq!(a.sack.iter().collect::<Vec<_>>(), vec![(5, 6)]);
        // Filling the last hole clears all SACK info.
        let a = imm(r.on_segment(4));
        assert_eq!(a.cum_ack, 6);
        assert!(a.sack.is_empty());
    }

    #[test]
    fn sack_disabled_sends_plain_acks() {
        let mut r = rx();
        imm(r.on_segment(0));
        let a = imm(r.on_segment(5));
        assert!(a.sack.is_empty(), "no SACK info without the flag");
    }

    #[test]
    fn sack_blocks_cap_at_option_space() {
        let cfg = TcpConfig {
            sack: true,
            ..TcpConfig::default()
        };
        let mut r = Receiver::new(ConnId::from_index(0), &cfg);
        // Five disjoint ranges: 2, 4, 6, 8, 10.
        let mut last = None;
        for seq in [2u64, 4, 6, 8, 10] {
            last = Some(r.on_segment(seq));
        }
        let a = imm(last.unwrap());
        assert_eq!(a.sack.len(), 3, "only three ranges fit");
        assert_eq!(
            a.sack.iter().next(),
            Some((10, 11)),
            "the most recent (highest) range survives"
        );
    }

    #[test]
    fn ecn_mark_echoes_ece_once() {
        let mut r = rx();
        let a = imm(r.on_segment_ecn(0, true));
        assert!(a.ece, "mark echoed on the very next ACK");
        // The echo is one-shot: the following clean ACK is ECE-free.
        let a = imm(r.on_segment_ecn(1, false));
        assert!(!a.ece);
    }

    #[test]
    fn ecn_mark_forces_immediate_ack_under_delack() {
        let mut r = rx_delack();
        // A lone marked segment may not sit behind the delack timer —
        // the sender needs the congestion signal now.
        let a = imm(r.on_segment_ecn(0, true));
        assert!(a.ece);
    }

    #[test]
    fn ece_survives_until_an_ack_actually_leaves() {
        let mut r = rx_delack();
        // Unmarked lone segment deferred, then a marked one arrives:
        // the combined ACK carries ECE.
        assert!(matches!(r.on_segment(0), AckDecision::Deferred { .. }));
        let a = imm(r.on_segment_ecn(1, true));
        assert_eq!(a.cum_ack, 2);
        assert!(a.ece);
    }

    #[test]
    fn delack_acks_immediately_on_gap() {
        let mut r = rx_delack();
        // Out-of-order arrival: no deferral allowed.
        assert!(matches!(r.on_segment(5), AckDecision::Immediate(_)));
        // Duplicates likewise.
        assert!(matches!(r.on_segment(5), AckDecision::Immediate(_)));
    }
}
