//! RFC 6298 round-trip-time estimation and retransmission timeout.

use crate::time::SimDuration;

/// Smoothed RTT state (SRTT / RTTVAR) with RTO derivation per RFC 6298.
///
/// # Examples
///
/// ```
/// use riptide_simnet::tcp::rtt::RttEstimator;
/// use riptide_simnet::time::SimDuration;
///
/// let mut est = RttEstimator::new(
///     SimDuration::from_secs(1),
///     SimDuration::from_millis(200),
///     SimDuration::from_secs(120),
/// );
/// est.on_sample(SimDuration::from_millis(100));
/// assert_eq!(est.srtt(), Some(SimDuration::from_millis(100)));
/// assert!(est.rto() >= SimDuration::from_millis(200));
/// ```
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto_initial: SimDuration,
    rto_min: SimDuration,
    rto_max: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator with the given initial/min/max RTO bounds.
    pub fn new(rto_initial: SimDuration, rto_min: SimDuration, rto_max: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto_initial,
            rto_min,
            rto_max,
        }
    }

    /// Feeds a new RTT measurement.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar.mul_f64(0.75) + err.mul_f64(0.25);
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some(srtt.mul_f64(0.875) + rtt.mul_f64(0.125));
            }
        }
    }

    /// The smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The current RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// The retransmission timeout: `SRTT + 4·RTTVAR`, clamped into
    /// `[rto_min, rto_max]`; the initial RTO before any sample.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => self.rto_initial,
            Some(srtt) => {
                let raw = srtt + self.rttvar.saturating_mul(4);
                raw.max(self.rto_min).min(self.rto_max)
            }
        }
    }

    /// The RTO after `backoff` consecutive timeouts (exponential backoff,
    /// clamped to `rto_max`).
    pub fn rto_backed_off(&self, backoff: u32) -> SimDuration {
        let factor = 1u64.checked_shl(backoff.min(32)).unwrap_or(u64::MAX);
        self.rto().saturating_mul(factor).min(self.rto_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(120),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        assert_eq!(est().rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(80));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(80)));
        assert_eq!(e.rttvar(), SimDuration::from_millis(40));
        // 80 + 4*40 = 240ms > rto_min
        assert_eq!(e.rto(), SimDuration::from_millis(240));
    }

    #[test]
    fn converges_to_steady_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(50));
        }
        let srtt = e.srtt().unwrap().as_millis_f64();
        assert!((srtt - 50.0).abs() < 0.5, "srtt {srtt}");
        // Variance decays toward zero, so RTO pins at rto_min.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn rto_tracks_variance() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        e.on_sample(SimDuration::from_millis(300));
        assert!(e.rto() > SimDuration::from_millis(300));
    }

    #[test]
    fn rto_clamped_to_max() {
        let mut e = RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(2),
        );
        e.on_sample(SimDuration::from_secs(10));
        assert_eq!(e.rto(), SimDuration::from_secs(2));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(100));
        let base = e.rto();
        assert_eq!(e.rto_backed_off(0), base);
        assert_eq!(
            e.rto_backed_off(1),
            base.saturating_mul(2).min(SimDuration::from_secs(120))
        );
        assert_eq!(e.rto_backed_off(40), SimDuration::from_secs(120));
    }
}
