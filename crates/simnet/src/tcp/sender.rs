//! The sending half of a simulated TCP connection.
//!
//! Implements loss detection and recovery: cumulative ACK processing,
//! duplicate-ACK counting with fast retransmit on the third duplicate,
//! NewReno partial-ACK retransmission inside recovery (or, with
//! [`TcpConfig::sack`], an RFC 6675-lite SACK scoreboard that fills every
//! known hole per episode), and a retransmission timer with exponential
//! backoff and go-back-N on expiry. Window *growth* is delegated to a
//! [`CongestionControl`] implementation.
//!
//! The sender is a pure state machine: it never touches the event queue
//! directly. Interactions produce work items readable through
//! [`Sender::take_outbox`] (segments to put on the wire) and
//! [`Sender::take_timer_request`] (RTO re-arm requests); the
//! [`crate::world::World`] turns those into events.

use std::collections::{BTreeSet, VecDeque};

use crate::config::TcpConfig;
use crate::packet::{Ack, SegIndex};
use crate::tcp::controller::{self, CongestionControl};
use crate::tcp::rtt::RttEstimator;
use crate::time::{SimDuration, SimTime};

/// A segment the sender wants transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outgoing {
    /// Stream position, in segments.
    pub seq: SegIndex,
    /// Whether this is a retransmission.
    pub retransmit: bool,
}

/// A request to (re-)arm the retransmission timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRequest {
    /// When the timer should fire.
    pub deadline: SimTime,
    /// Epoch that must still be current for the firing to count.
    pub epoch: u64,
}

/// Why the congestion window changed last (exposed for stats/debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SenderPhase {
    /// No loss event has occurred yet.
    #[default]
    Open,
    /// In fast recovery following a triple duplicate ACK.
    Recovery,
    /// Recovering from a retransmission timeout.
    Timeout,
}

/// The sending half of one TCP connection.
#[derive(Debug)]
pub struct Sender {
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    initial_cwnd: u32,
    slow_start_after_idle: bool,
    /// Window to restart from after a long idle period. Linux re-reads the
    /// route's *current* `initcwnd` in `tcp_cwnd_restart`, so a Riptide
    /// route update affects already-open idle connections too; the world
    /// refreshes this from the host policy before each transfer.
    idle_restart_window: u32,

    /// Total segments the application has written.
    stream_end: SegIndex,
    /// Next never-before-sent segment.
    next_seq: SegIndex,
    /// Everything below this is cumulatively acknowledged.
    cum_acked: SegIndex,
    /// Peer's advertised receive window, in segments.
    peer_rwnd: u32,

    dup_acks: u32,
    phase: SenderPhase,
    /// NewReno recovery point: highest sequence sent when loss was detected.
    recover_point: SegIndex,
    /// ECN recovery point: ECE echoes below this acknowledge the same
    /// congestion event and trigger no further reduction (one cwnd cut
    /// per RTT, RFC 3168 §6.1.2).
    ece_recover_point: SegIndex,

    rto_backoff: u32,
    rto_epoch: u64,
    rto_armed: bool,

    /// Send timestamps for in-flight segments, indexed by offset from
    /// `send_base`; `true` = retransmitted (Karn's rule: never RTT-sample
    /// those). A ring buffer rather than a map: live entries always fall
    /// in `[cum_acked, stream_end)`, so cumulative ACKs prune from the
    /// front and sends append near the back, with no per-segment node
    /// allocation.
    send_times: VecDeque<Option<(SimTime, bool)>>,
    /// Stream position of `send_times[0]`; advances with `cum_acked`.
    send_base: SegIndex,

    /// Whether SACK-based recovery is enabled (RFC 2018/6675-lite).
    sack_enabled: bool,
    /// Scoreboard: segments above `cum_acked` the receiver has reported
    /// holding selectively.
    sacked: BTreeSet<SegIndex>,
    /// Holes already retransmitted during the current recovery episode.
    recovery_retx: BTreeSet<SegIndex>,

    outbox: Vec<Outgoing>,
    timer_request: Option<TimerRequest>,
    /// Set when a loss event updates ssthresh; the stack persists it to
    /// the destination metrics cache (Linux `tcp_metrics`).
    ssthresh_update: Option<u32>,

    last_activity: SimTime,
    retransmits_total: u64,
    timeouts_total: u64,
    fast_retransmits_total: u64,
    ece_reductions_total: u64,
}

impl Sender {
    /// Creates a sender whose slow start begins at `initial_cwnd` segments
    /// (the knob Riptide turns) under the stack-wide `cfg`.
    pub fn new(cfg: &TcpConfig, initial_cwnd: u32, now: SimTime) -> Self {
        Sender::with_ssthresh(cfg, initial_cwnd, cfg.initial_ssthresh, now)
    }

    /// Creates a sender with an explicit initial slow-start threshold —
    /// how a cached `tcp_metrics` entry seeds a new connection.
    pub fn with_ssthresh(
        cfg: &TcpConfig,
        initial_cwnd: u32,
        initial_ssthresh: u32,
        now: SimTime,
    ) -> Self {
        Sender {
            cc: controller::build(cfg.cc, initial_cwnd, initial_ssthresh),
            rtt: RttEstimator::new(cfg.rto_initial, cfg.rto_min, cfg.rto_max),
            initial_cwnd: initial_cwnd.max(1),
            slow_start_after_idle: cfg.slow_start_after_idle,
            idle_restart_window: initial_cwnd.max(1),
            stream_end: 0,
            next_seq: 0,
            cum_acked: 0,
            peer_rwnd: cfg.initial_rwnd,
            dup_acks: 0,
            phase: SenderPhase::Open,
            recover_point: 0,
            ece_recover_point: 0,
            rto_backoff: 0,
            rto_epoch: 0,
            rto_armed: false,
            send_times: VecDeque::new(),
            send_base: 0,
            sack_enabled: cfg.sack,
            sacked: BTreeSet::new(),
            recovery_retx: BTreeSet::new(),
            outbox: Vec::new(),
            timer_request: None,
            ssthresh_update: None,
            last_activity: now,
            retransmits_total: 0,
            timeouts_total: 0,
            fast_retransmits_total: 0,
            ece_reductions_total: 0,
        }
    }

    /// The initial congestion window this connection opened with.
    pub fn initial_cwnd(&self) -> u32 {
        self.initial_cwnd
    }

    /// Sets the window used for slow-start-after-idle restarts. Linux
    /// derives this from the route's current `initcwnd` at restart time,
    /// so it changes when Riptide updates the route.
    pub fn set_idle_restart_window(&mut self, window: u32) {
        self.idle_restart_window = window.max(1);
    }

    /// The current idle-restart window.
    pub fn idle_restart_window(&self) -> u32 {
        self.idle_restart_window
    }

    /// Current congestion window rounded to whole segments, as `ss` shows.
    pub fn cwnd_segments(&self) -> u32 {
        (self.cc.cwnd().round() as u32).max(1)
    }

    /// Current slow-start threshold in segments (`u32::MAX` ≈ unset).
    pub fn ssthresh_segments(&self) -> u32 {
        let s = self.cc.ssthresh();
        if s >= u32::MAX as f64 {
            u32::MAX
        } else {
            s.round() as u32
        }
    }

    /// Smoothed RTT, once measured.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Cumulatively acknowledged stream position, in segments.
    pub fn cum_acked(&self) -> SegIndex {
        self.cum_acked
    }

    /// Total segments the application has written.
    pub fn stream_end(&self) -> SegIndex {
        self.stream_end
    }

    /// Whether every written segment has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.cum_acked == self.stream_end
    }

    /// Segments currently considered in flight.
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.cum_acked
    }

    /// RFC 6675 "pipe": in-flight segments not known to have left the
    /// network via selective acknowledgement.
    pub fn pipe(&self) -> u64 {
        self.in_flight().saturating_sub(self.sacked.len() as u64)
    }

    /// Segments currently marked in the SACK scoreboard.
    pub fn sacked_count(&self) -> usize {
        self.sacked.len()
    }

    /// Total retransmitted segments (fast + timeout-driven).
    pub fn retransmits_total(&self) -> u64 {
        self.retransmits_total
    }

    /// Total retransmission timeouts taken.
    pub fn timeouts_total(&self) -> u64 {
        self.timeouts_total
    }

    /// Total fast-retransmit events.
    pub fn fast_retransmits_total(&self) -> u64 {
        self.fast_retransmits_total
    }

    /// Total window reductions taken in response to ECN echoes. These
    /// involve no retransmission — the congestion signal arrives without
    /// packet loss, which is exactly why ECN and the retransmit counter
    /// diverge as learning-policy inputs.
    pub fn ece_reductions_total(&self) -> u64 {
        self.ece_reductions_total
    }

    /// Current recovery phase.
    pub fn phase(&self) -> SenderPhase {
        self.phase
    }

    /// Instant of the last send/ack activity.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Drains segments queued for transmission since the last call.
    pub fn take_outbox(&mut self) -> Vec<Outgoing> {
        std::mem::take(&mut self.outbox)
    }

    /// Appends the queued segments to `out` and empties the internal
    /// outbox, retaining both buffers' capacity — the allocation-free
    /// variant of [`Sender::take_outbox`] used by the event loop.
    pub fn drain_outbox_into(&mut self, out: &mut Vec<Outgoing>) {
        out.append(&mut self.outbox);
    }

    /// The recorded `(sent_at, retransmitted)` pair for `seq`, if it has
    /// been transmitted and is not yet cumulatively acknowledged.
    fn send_time(&self, seq: SegIndex) -> Option<(SimTime, bool)> {
        let idx = seq.checked_sub(self.send_base)?;
        self.send_times.get(idx as usize).copied().flatten()
    }

    /// Records (or overwrites) the send timestamp for `seq`.
    fn record_send(&mut self, seq: SegIndex, at: SimTime, retransmit: bool) {
        debug_assert!(seq >= self.send_base, "sends never precede cum_acked");
        let idx = (seq - self.send_base) as usize;
        if idx >= self.send_times.len() {
            self.send_times.resize(idx + 1, None);
        }
        self.send_times[idx] = Some((at, retransmit));
    }

    /// Takes the pending timer re-arm request, if any.
    pub fn take_timer_request(&mut self) -> Option<TimerRequest> {
        self.timer_request.take()
    }

    /// Takes the ssthresh value recorded by the most recent loss event,
    /// if any — destined for the host's destination metrics cache.
    pub fn take_ssthresh_update(&mut self) -> Option<u32> {
        self.ssthresh_update.take()
    }

    /// Appends `segments` of application data to the stream and transmits
    /// as much as the window allows.
    pub fn write(&mut self, segments: u64, now: SimTime) {
        if segments == 0 {
            return;
        }
        // tcp_slow_start_after_idle: collapse a window that has sat unused
        // longer than one RTO back to the initial window.
        if self.slow_start_after_idle
            && self.in_flight() == 0
            && now.saturating_since(self.last_activity) > self.rtt.rto()
        {
            self.cc.on_idle_restart(self.idle_restart_window);
        }
        self.stream_end += segments;
        self.last_activity = now;
        self.pump(now);
    }

    /// Processes a cumulative acknowledgement.
    pub fn on_ack(&mut self, ack: Ack, now: SimTime) {
        self.peer_rwnd = ack.rwnd;
        self.last_activity = now;
        if self.sack_enabled {
            for (start, end) in ack.sack.iter() {
                for seq in start.max(self.cum_acked)..end.min(self.next_seq) {
                    self.sacked.insert(seq);
                }
            }
        }
        // ECN echo: cut the window once per round trip (RFC 3168
        // §6.1.2) without retransmitting anything — the packet was
        // delivered, only marked. Echoes for the same flight (below the
        // recovery point) repeat the same congestion event.
        if ack.ece && ack.cum_ack >= self.ece_recover_point {
            self.cc.on_ecn(now);
            self.ssthresh_update = Some(self.ssthresh_segments());
            self.ece_recover_point = self.next_seq;
            self.ece_reductions_total += 1;
        }
        if ack.cum_ack > self.cum_acked {
            self.handle_advance(ack.cum_ack, now);
        } else if ack.cum_ack == self.cum_acked && self.in_flight() > 0 {
            self.handle_duplicate(now);
        }
        self.pump(now);
    }

    fn handle_advance(&mut self, new_cum: SegIndex, now: SimTime) {
        let newly = new_cum - self.cum_acked;
        // Congestion-window validation (Linux `tcp_is_cwnd_limited`): the
        // window only grows when the flow was actually using it — within
        // 2x in slow start, exactly full in congestion avoidance. Without
        // this, every ack on an app-limited flow inflates cwnd to values
        // the path never demonstrated it could carry. The unbounded
        // growth this still allows across repeated transfers is what the
        // ssthresh metrics cache (tcp_metrics) moderates.
        let in_flight_before = self.next_seq.saturating_sub(self.cum_acked);
        let wnd = (self.cc.cwnd().floor() as u64)
            .max(1)
            .min(self.peer_rwnd as u64);
        let cwnd_limited = if self.cc.in_slow_start() {
            2 * in_flight_before >= wnd
        } else {
            in_flight_before >= wnd
        };
        // RTT sample from the most recently acknowledged, never-
        // retransmitted segment (Karn's algorithm).
        if let Some((sent_at, retx)) = self.send_time(new_cum - 1) {
            if !retx {
                self.rtt.on_sample(now.saturating_since(sent_at));
            }
        }
        let acked = ((new_cum - self.send_base) as usize).min(self.send_times.len());
        self.send_times.drain(..acked);
        self.send_base = new_cum;
        self.cum_acked = new_cum;
        // A late ACK from a pre-timeout flight can pass a rewound
        // `next_seq` (go-back-N); those segments need no resending.
        self.next_seq = self.next_seq.max(new_cum);
        if !self.sacked.is_empty() {
            self.sacked = self.sacked.split_off(&new_cum);
        }
        if !self.recovery_retx.is_empty() {
            self.recovery_retx = self.recovery_retx.split_off(&new_cum);
        }
        self.dup_acks = 0;
        self.rto_backoff = 0;

        match self.phase {
            SenderPhase::Recovery | SenderPhase::Timeout if new_cum < self.recover_point => {
                if self.sack_enabled {
                    // SACK: retransmit every known hole once per episode.
                    self.fill_holes(now);
                } else {
                    // Partial ACK: another hole. Retransmit the new first
                    // unacked segment immediately (NewReno).
                    self.retransmit(self.cum_acked, now);
                }
            }
            SenderPhase::Recovery | SenderPhase::Timeout => {
                self.phase = SenderPhase::Open;
                self.recovery_retx.clear();
                if cwnd_limited {
                    self.cc.on_ack(newly, now, self.rtt.srtt());
                }
            }
            SenderPhase::Open => {
                if cwnd_limited {
                    self.cc.on_ack(newly, now, self.rtt.srtt());
                }
            }
        }

        if self.all_acked() && self.in_flight() == 0 {
            self.disarm_rto();
        } else {
            self.arm_rto(now);
        }
    }

    fn handle_duplicate(&mut self, now: SimTime) {
        self.dup_acks += 1;
        if self.dup_acks == 3 && self.phase == SenderPhase::Open {
            self.cc.on_loss(now);
            self.ssthresh_update = Some(self.ssthresh_segments());
            self.phase = SenderPhase::Recovery;
            self.recover_point = self.next_seq;
            self.recovery_retx.clear();
            self.fast_retransmits_total += 1;
            if self.sack_enabled {
                self.fill_holes(now);
            } else {
                self.retransmit(self.cum_acked, now);
            }
            self.arm_rto(now);
        } else if self.phase == SenderPhase::Recovery && self.sack_enabled {
            // Later dup-acks widen the scoreboard: keep filling holes.
            self.fill_holes(now);
        }
    }

    /// SACK recovery (RFC 6675-lite): retransmit every segment below the
    /// recovery point that the receiver has not selectively acknowledged,
    /// at most once per recovery episode.
    fn fill_holes(&mut self, now: SimTime) {
        for seq in self.cum_acked..self.recover_point.min(self.next_seq) {
            if self.sacked.contains(&seq) || self.recovery_retx.contains(&seq) {
                continue;
            }
            self.recovery_retx.insert(seq);
            self.retransmit(seq, now);
        }
    }

    /// Handles a retransmission-timer firing. Returns `true` if the timer
    /// was current and a timeout was actually taken.
    pub fn on_rto_fire(&mut self, epoch: u64, now: SimTime) -> bool {
        if !self.rto_armed || epoch != self.rto_epoch {
            return false; // stale timer from an earlier arm
        }
        if self.in_flight() == 0 {
            self.disarm_rto();
            return false;
        }
        self.timeouts_total += 1;
        self.rto_backoff += 1;
        self.cc.on_timeout(now);
        self.ssthresh_update = Some(self.ssthresh_segments());
        // RFC 2018 reneging safety: discard the scoreboard on timeout.
        self.sacked.clear();
        self.recovery_retx.clear();
        self.phase = SenderPhase::Timeout;
        self.recover_point = self.next_seq;
        // Go-back-N: rewind and resend from the first unacknowledged
        // segment. The receiver discards duplicates.
        self.next_seq = self.cum_acked;
        self.last_activity = now;
        self.pump(now);
        self.arm_rto(now);
        true
    }

    fn retransmit(&mut self, seq: SegIndex, now: SimTime) {
        self.retransmits_total += 1;
        self.record_send(seq, now, true);
        self.outbox.push(Outgoing {
            seq,
            retransmit: true,
        });
    }

    /// Sends new segments while the effective window allows.
    fn pump(&mut self, now: SimTime) {
        let wnd = (self.cc.cwnd().floor() as u64)
            .max(1)
            .min(self.peer_rwnd as u64);
        while self.next_seq < self.stream_end && self.pipe() < wnd {
            let seq = self.next_seq;
            let retx = self.send_time(seq).is_some();
            if retx {
                self.retransmits_total += 1;
            }
            self.record_send(seq, now, retx);
            self.outbox.push(Outgoing {
                seq,
                retransmit: retx,
            });
            self.next_seq += 1;
        }
        if self.in_flight() > 0 && !self.rto_armed {
            self.arm_rto(now);
        }
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_epoch += 1;
        self.rto_armed = true;
        let deadline = now + self.rtt.rto_backed_off(self.rto_backoff);
        self.timer_request = Some(TimerRequest {
            deadline,
            epoch: self.rto_epoch,
        });
    }

    fn disarm_rto(&mut self) {
        self.rto_epoch += 1;
        self.rto_armed = false;
        self.timer_request = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender_with_iw(iw: u32) -> Sender {
        Sender::new(&TcpConfig::default(), iw, SimTime::ZERO)
    }

    fn ack(cum: SegIndex) -> Ack {
        Ack::plain(crate::ids::ConnId::from_index(0), cum, 1000)
    }

    fn ece_ack(cum: SegIndex) -> Ack {
        Ack {
            ece: true,
            ..ack(cum)
        }
    }

    #[test]
    fn ece_reduces_cwnd_without_retransmitting() {
        let mut s = sender_with_iw(10);
        s.write(100, SimTime::ZERO);
        s.take_outbox();
        let before = s.cwnd_segments();
        s.on_ack(ece_ack(5), SimTime::from_millis(100));
        assert!(
            s.cwnd_segments() < before,
            "window cut: {} -> {}",
            before,
            s.cwnd_segments()
        );
        assert_eq!(s.ece_reductions_total(), 1);
        assert_eq!(s.retransmits_total(), 0, "nothing was lost");
        assert_eq!(s.phase(), SenderPhase::Open, "no recovery episode");
        assert!(
            s.take_outbox().iter().all(|o| !o.retransmit),
            "only fresh data after an ECE"
        );
    }

    #[test]
    fn ece_cuts_at_most_once_per_rtt() {
        let mut s = sender_with_iw(10);
        s.write(100, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(ece_ack(2), SimTime::from_millis(50));
        let after_first = s.cwnd_segments();
        // More ECE echoes from the same flight: same congestion event.
        s.on_ack(ece_ack(4), SimTime::from_millis(60));
        s.on_ack(ece_ack(6), SimTime::from_millis(70));
        assert_eq!(s.ece_reductions_total(), 1);
        assert!(s.cwnd_segments() >= after_first.saturating_sub(1));
        // Once the post-cut flight is acknowledged, a new echo counts.
        let flight_end = s.stream_end().min(s.cum_acked() + s.in_flight());
        s.on_ack(ack(flight_end), SimTime::from_millis(150));
        s.take_outbox();
        s.on_ack(ece_ack(flight_end + 1), SimTime::from_millis(250));
        assert_eq!(s.ece_reductions_total(), 2);
    }

    #[test]
    fn ece_records_ssthresh_for_the_metrics_cache() {
        let mut s = sender_with_iw(10);
        s.write(100, SimTime::ZERO);
        s.take_outbox();
        assert!(s.take_ssthresh_update().is_none());
        s.on_ack(ece_ack(5), SimTime::from_millis(100));
        let cached = s.take_ssthresh_update().expect("ECE updates the cache");
        assert!(cached >= 1);
    }

    #[test]
    fn initial_burst_is_initcwnd_limited() {
        let mut s = sender_with_iw(10);
        s.write(100, SimTime::ZERO);
        let out = s.take_outbox();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].seq, 0);
        assert_eq!(out[9].seq, 9);
        assert!(out.iter().all(|o| !o.retransmit));
        assert_eq!(s.in_flight(), 10);
    }

    #[test]
    fn larger_initcwnd_sends_larger_burst() {
        let mut s = sender_with_iw(80);
        s.write(100, SimTime::ZERO);
        assert_eq!(s.take_outbox().len(), 80);
    }

    #[test]
    fn ack_releases_more_segments_slow_start() {
        let mut s = sender_with_iw(10);
        s.write(100, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        s.on_ack(ack(10), t);
        // Slow start: cwnd 10 -> 20, all acked, so 20 new segments fly.
        let out = s.take_outbox();
        assert_eq!(out.len(), 20);
        assert_eq!(s.cwnd_segments(), 20);
    }

    #[test]
    fn rtt_is_sampled_from_acks() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(ack(10), SimTime::from_millis(120));
        assert_eq!(s.srtt(), Some(SimDuration::from_millis(120)));
    }

    #[test]
    fn transfer_completes_when_all_acked() {
        let mut s = sender_with_iw(10);
        s.write(5, SimTime::ZERO);
        s.take_outbox();
        assert!(!s.all_acked());
        s.on_ack(ack(5), SimTime::from_millis(50));
        assert!(s.all_acked());
        assert_eq!(s.in_flight(), 0);
        // Timer is disarmed once everything is acknowledged.
        assert!(s.take_timer_request().is_none());
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        // Segment 0 lost: receiver acks 0 repeatedly.
        s.on_ack(ack(0), t);
        s.on_ack(ack(0), t);
        assert_eq!(s.fast_retransmits_total(), 0);
        s.on_ack(ack(0), t);
        assert_eq!(s.fast_retransmits_total(), 1);
        assert_eq!(s.phase(), SenderPhase::Recovery);
        let out = s.take_outbox();
        assert!(out.iter().any(|o| o.seq == 0 && o.retransmit));
        // CUBIC beta: cwnd dropped to 7.
        assert_eq!(s.cwnd_segments(), 7);
    }

    #[test]
    fn full_ack_exits_recovery() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        for _ in 0..3 {
            s.on_ack(ack(0), t);
        }
        assert_eq!(s.phase(), SenderPhase::Recovery);
        s.on_ack(ack(10), SimTime::from_millis(200));
        assert_eq!(s.phase(), SenderPhase::Open);
        assert!(s.all_acked());
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        for _ in 0..3 {
            s.on_ack(ack(0), t);
        }
        s.take_outbox();
        // Partial ack: segments 0..4 arrive but 5 is also lost.
        s.on_ack(ack(5), SimTime::from_millis(150));
        assert_eq!(s.phase(), SenderPhase::Recovery, "still recovering");
        let out = s.take_outbox();
        assert!(
            out.iter().any(|o| o.seq == 5 && o.retransmit),
            "partial ack retransmits the new hole: {out:?}"
        );
    }

    #[test]
    fn rto_collapses_window_and_goes_back_n() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let req = s.take_timer_request().expect("timer armed on first send");
        assert!(s.on_rto_fire(req.epoch, req.deadline));
        assert_eq!(s.timeouts_total(), 1);
        assert_eq!(s.cwnd_segments(), 1);
        let out = s.take_outbox();
        // cwnd=1: exactly the first unacked segment is resent.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 0);
        assert!(out[0].retransmit);
    }

    #[test]
    fn stale_rto_epoch_is_ignored() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let req = s.take_timer_request().unwrap();
        // An ack re-arms with a new epoch; the old deadline must not fire.
        s.on_ack(ack(5), SimTime::from_millis(10));
        assert!(!s.on_rto_fire(req.epoch, req.deadline));
        assert_eq!(s.timeouts_total(), 0);
    }

    #[test]
    fn rto_backoff_doubles_deadline() {
        let mut s = sender_with_iw(10);
        s.write(100, SimTime::ZERO);
        s.take_outbox();
        let r1 = s.take_timer_request().unwrap();
        assert!(s.on_rto_fire(r1.epoch, r1.deadline));
        let r2 = s.take_timer_request().unwrap();
        assert!(s.on_rto_fire(r2.epoch, r2.deadline));
        let r3 = s.take_timer_request().unwrap();
        let d1 = r2.deadline - r1.deadline;
        let d2 = r3.deadline - r2.deadline;
        assert_eq!(d2, d1 * 2, "backoff doubles: {d1} then {d2}");
    }

    #[test]
    fn peer_rwnd_limits_burst() {
        let cfg = TcpConfig {
            initial_rwnd: 4,
            ..TcpConfig::default()
        };
        let mut s = Sender::new(&cfg, 100, SimTime::ZERO);
        s.write(50, SimTime::ZERO);
        assert_eq!(s.take_outbox().len(), 4, "rwnd-bound despite cwnd=100");
        // Receiver opens the window; next ack releases more.
        s.on_ack(
            Ack::plain(crate::ids::ConnId::from_index(0), 4, 64),
            SimTime::from_millis(50),
        );
        assert!(s.take_outbox().len() > 4);
    }

    #[test]
    fn idle_restart_resets_window_when_enabled() {
        let cfg = TcpConfig {
            slow_start_after_idle: true,
            ..TcpConfig::default()
        };
        let mut s = Sender::new(&cfg, 10, SimTime::ZERO);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(ack(10), SimTime::from_millis(100));
        s.take_outbox();
        assert_eq!(s.cwnd_segments(), 20);
        // A long idle gap, then new data: window collapses to initial.
        s.write(10, SimTime::from_secs(30));
        assert_eq!(s.cwnd_segments(), 10);
    }

    #[test]
    fn idle_restart_uses_updated_route_window() {
        // Linux re-reads the route's initcwnd at restart time; a Riptide
        // route update therefore lifts even already-open idle connections.
        let cfg = TcpConfig {
            slow_start_after_idle: true,
            ..TcpConfig::default()
        };
        let mut s = Sender::new(&cfg, 10, SimTime::ZERO);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(ack(10), SimTime::from_millis(100));
        s.take_outbox();
        assert_eq!(s.cwnd_segments(), 20);
        s.set_idle_restart_window(80);
        // Idle long past the RTO, then a new window-filling burst: the
        // restart window of 80 exceeds the current 20, so the cap is a
        // no-op and the full window keeps growing.
        s.write(20, SimTime::from_secs(30));
        assert_eq!(
            s.cwnd_segments(),
            20,
            "restart window above cwnd is a no-op"
        );
        s.take_outbox();
        s.on_ack(ack(30), SimTime::from_secs(31));
        s.take_outbox();
        assert!(s.cwnd_segments() > 20);
        // Now a small restart window does shrink.
        s.set_idle_restart_window(5);
        s.write(10, SimTime::from_secs(60));
        assert_eq!(s.cwnd_segments(), 5);
        assert_eq!(s.idle_restart_window(), 5);
    }

    #[test]
    fn idle_does_not_reset_when_disabled() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(ack(10), SimTime::from_millis(100));
        s.take_outbox();
        assert_eq!(s.cwnd_segments(), 20);
        s.write(10, SimTime::from_secs(30));
        assert_eq!(s.cwnd_segments(), 20, "CDN practice: window retained");
    }

    #[test]
    fn rto_during_recovery_takes_precedence() {
        // Fast retransmit enters recovery; if the retransmission itself
        // is lost, the RTO must still rescue the connection.
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        for _ in 0..3 {
            s.on_ack(ack(0), t);
        }
        assert_eq!(s.phase(), SenderPhase::Recovery);
        s.take_outbox();
        let req = s.take_timer_request().expect("recovery re-arms the timer");
        assert!(s.on_rto_fire(req.epoch, req.deadline));
        assert_eq!(s.phase(), SenderPhase::Timeout);
        assert_eq!(s.cwnd_segments(), 1);
        // Everything eventually acked exits cleanly.
        s.take_outbox();
        s.on_ack(ack(10), req.deadline + SimDuration::from_millis(100));
        assert_eq!(s.phase(), SenderPhase::Open);
        assert!(s.all_acked());
    }

    #[test]
    fn consecutive_loss_episodes_keep_shrinking_ssthresh() {
        let mut s = sender_with_iw(100);
        s.write(1000, SimTime::ZERO);
        s.take_outbox();
        let mut now = SimTime::from_millis(100);
        let mut cum = 0u64;
        let mut prev_ssthresh = u32::MAX;
        for _round in 0..3 {
            // Partial progress, then a loss episode.
            cum += 50;
            s.on_ack(ack(cum), now);
            s.take_outbox();
            for _ in 0..3 {
                s.on_ack(ack(cum), now);
            }
            s.take_outbox();
            let ss = s.ssthresh_segments();
            assert!(ss < prev_ssthresh, "ssthresh ratchets down: {ss}");
            prev_ssthresh = ss;
            // Recover fully before the next episode.
            now += SimDuration::from_millis(100);
            cum = s.stream_end().min(cum + 100);
            s.on_ack(ack(cum), now);
            s.take_outbox();
        }
        assert!(prev_ssthresh >= 2, "floor holds");
    }

    #[test]
    fn dupacks_after_recovery_exit_do_not_retrigger() {
        let mut s = sender_with_iw(10);
        s.write(20, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        for _ in 0..3 {
            s.on_ack(ack(0), t);
        }
        let first_frt = s.fast_retransmits_total();
        s.take_outbox();
        // Full ack exits recovery.
        s.on_ack(ack(10), SimTime::from_millis(200));
        s.take_outbox();
        // A second loss episode is a *new* event and may trigger again —
        // but only after three fresh dupacks, not stale state.
        s.on_ack(ack(10), SimTime::from_millis(210));
        s.on_ack(ack(10), SimTime::from_millis(211));
        assert_eq!(
            s.fast_retransmits_total(),
            first_frt,
            "two dupacks insufficient"
        );
        s.on_ack(ack(10), SimTime::from_millis(212));
        assert_eq!(s.fast_retransmits_total(), first_frt + 1);
    }

    #[test]
    fn cwnd_validation_blocks_app_limited_growth() {
        // A tiny transfer on a huge window must not inflate the window.
        let mut s = sender_with_iw(100);
        s.write(5, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(ack(5), SimTime::from_millis(80));
        assert_eq!(
            s.cwnd_segments(),
            100,
            "5 in flight of a 100 window is app-limited: no growth"
        );
    }

    #[test]
    fn window_filling_transfer_does_grow() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(ack(10), SimTime::from_millis(80));
        assert!(s.cwnd_segments() > 10, "window-filling flight grows");
    }

    #[test]
    fn write_zero_is_a_noop() {
        let mut s = sender_with_iw(10);
        s.write(0, SimTime::ZERO);
        assert!(s.take_outbox().is_empty());
        assert!(s.all_acked());
    }

    fn sack_sender(iw: u32) -> Sender {
        let cfg = TcpConfig {
            sack: true,
            ..TcpConfig::default()
        };
        Sender::new(&cfg, iw, SimTime::ZERO)
    }

    fn sack_ack(cum: SegIndex, ranges: &[(SegIndex, SegIndex)]) -> Ack {
        let mut a = ack(cum);
        for &(s, e) in ranges {
            a.sack.push(s, e);
        }
        a
    }

    #[test]
    fn sack_fills_multiple_holes_in_one_episode() {
        // Segments 0 and 5 both lost out of a 10-segment flight. NewReno
        // needs a partial-ack round trip per hole; SACK retransmits both
        // as soon as the scoreboard shows them.
        let mut s = sack_sender(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        // Receiver got 1..=4 and 6..=9: dup-acks at cum 0 with SACK info.
        s.on_ack(sack_ack(0, &[(1, 5)]), t);
        s.on_ack(sack_ack(0, &[(1, 5), (6, 8)]), t);
        s.on_ack(sack_ack(0, &[(1, 5), (6, 10)]), t);
        assert_eq!(s.phase(), SenderPhase::Recovery);
        let out = s.take_outbox();
        let retx: Vec<SegIndex> = out.iter().filter(|o| o.retransmit).map(|o| o.seq).collect();
        assert!(retx.contains(&0), "first hole retransmitted: {retx:?}");
        assert!(retx.contains(&5), "second hole retransmitted too: {retx:?}");
        assert_eq!(s.sacked_count(), 8);
        assert_eq!(s.pipe(), 2, "only the two retransmits count as in flight");
        // Both land: full ack exits recovery cleanly.
        s.on_ack(ack(10), SimTime::from_millis(200));
        assert!(s.all_acked());
        assert_eq!(s.phase(), SenderPhase::Open);
        assert_eq!(s.sacked_count(), 0, "scoreboard drained by cum ack");
    }

    #[test]
    fn sack_does_not_retransmit_the_same_hole_twice() {
        let mut s = sack_sender(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        for i in 0..4 {
            s.on_ack(sack_ack(0, &[(1, 5 + i)]), t);
        }
        let out = s.take_outbox();
        let retx0 = out.iter().filter(|o| o.retransmit && o.seq == 0).count();
        assert_eq!(retx0, 1, "hole 0 retransmitted exactly once per episode");
    }

    #[test]
    fn newreno_needs_partial_acks_where_sack_does_not() {
        // The comparison motivating SACK: same double-loss pattern.
        let mut s = sender_with_iw(10); // sack off
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        let t = SimTime::from_millis(100);
        for _ in 0..3 {
            s.on_ack(ack(0), t);
        }
        let out = s.take_outbox();
        let retx: Vec<SegIndex> = out.iter().filter(|o| o.retransmit).map(|o| o.seq).collect();
        assert_eq!(retx, vec![0], "NewReno only knows about the first hole");
        // Only after the partial ack does it learn about segment 5.
        s.on_ack(ack(5), SimTime::from_millis(200));
        let out = s.take_outbox();
        assert!(out.iter().any(|o| o.retransmit && o.seq == 5));
    }

    #[test]
    fn sack_rto_clears_scoreboard() {
        let mut s = sack_sender(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(sack_ack(0, &[(1, 9)]), SimTime::from_millis(50));
        assert!(s.sacked_count() > 0);
        let req = s.take_timer_request().unwrap();
        assert!(s.on_rto_fire(req.epoch, req.deadline));
        assert_eq!(s.sacked_count(), 0, "reneging safety: scoreboard dropped");
    }

    #[test]
    fn sack_ignored_when_disabled() {
        let mut s = sender_with_iw(10);
        s.write(10, SimTime::ZERO);
        s.take_outbox();
        s.on_ack(sack_ack(0, &[(1, 9)]), SimTime::from_millis(50));
        assert_eq!(s.sacked_count(), 0, "scoreboard untouched without the flag");
        assert_eq!(s.pipe(), s.in_flight());
    }

    #[test]
    fn karn_no_rtt_sample_from_retransmit() {
        let mut s = sender_with_iw(10);
        s.write(1, SimTime::ZERO);
        s.take_outbox();
        let req = s.take_timer_request().unwrap();
        s.on_rto_fire(req.epoch, req.deadline);
        s.take_outbox();
        // The eventual ack of a retransmitted segment must not poison SRTT.
        s.on_ack(ack(1), req.deadline + SimDuration::from_millis(5));
        assert_eq!(s.srtt(), None);
    }
}
