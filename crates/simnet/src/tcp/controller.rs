//! Congestion-control algorithms: the window-growth side of TCP.
//!
//! The sender state machine ([`crate::tcp::sender::Sender`]) handles loss
//! detection, retransmission and pacing; it delegates *how fast the window
//! grows and shrinks* to a [`CongestionControl`] implementation. Two are
//! provided, matching the paper's setting (Linux default CUBIC) and the
//! classical baseline (Reno).
//!
//! Riptide never changes these algorithms — it only chooses the *initial*
//! window they start from, exactly as §III-B emphasizes.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Window-growth policy for one connection.
///
/// Windows are expressed in segments as `f64` so sub-segment growth in
/// congestion avoidance accumulates exactly; the sender floors the value
/// when deciding how many segments may be in flight.
pub trait CongestionControl: fmt::Debug {
    /// Current congestion window, in segments (≥ 1).
    fn cwnd(&self) -> f64;

    /// Current slow-start threshold, in segments.
    fn ssthresh(&self) -> f64;

    /// Whether the window is still in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// Called when `newly_acked` segments are cumulatively acknowledged.
    fn on_ack(&mut self, newly_acked: u64, now: SimTime, srtt: Option<SimDuration>);

    /// Called once when loss is detected by triple duplicate ACK
    /// (multiplicative decrease; the sender then enters fast recovery).
    fn on_loss(&mut self, now: SimTime);

    /// Called on retransmission timeout (collapse to one segment).
    fn on_timeout(&mut self, now: SimTime);

    /// Called when a long idle period requires restarting from the initial
    /// window (`tcp_slow_start_after_idle`).
    fn on_idle_restart(&mut self, initial_cwnd: u32);

    /// The algorithm's short name (`"reno"` / `"cubic"`), as `ss` prints.
    fn name(&self) -> &'static str;
}

/// Classic Reno/NewReno AIMD.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// Creates a Reno controller starting from `initial_cwnd` segments.
    pub fn new(initial_cwnd: u32, initial_ssthresh: u32) -> Self {
        Reno {
            cwnd: initial_cwnd.max(1) as f64,
            ssthresh: initial_ssthresh as f64,
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, newly_acked: u64, _now: SimTime, _srtt: Option<SimDuration>) {
        let mut remaining = newly_acked as f64;
        // Slow start consumes acks one segment per segment until ssthresh.
        if self.cwnd < self.ssthresh {
            let ss_room = (self.ssthresh - self.cwnd).min(remaining);
            self.cwnd += ss_room;
            remaining -= ss_room;
        }
        // Congestion avoidance: +1/cwnd per acked segment.
        if remaining > 0.0 {
            self.cwnd += remaining / self.cwnd;
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd * 0.5).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd * 0.5).max(2.0);
        self.cwnd = 1.0;
    }

    fn on_idle_restart(&mut self, initial_cwnd: u32) {
        self.cwnd = self.cwnd.min(initial_cwnd.max(1) as f64);
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// TCP CUBIC (RFC 8312-style window growth, without the TCP-friendliness
/// fallback region, which never binds on the high-BDP inter-DC paths this
/// simulator targets).
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Multiplicative decrease factor (0.7 per RFC 8312).
    beta: f64,
    /// CUBIC aggressiveness constant.
    c: f64,
    /// Memoized `K = cbrt(w_max·(1−beta)/c)`, refreshed whenever `w_max`
    /// changes — the same bits recomputing per ack would produce, without
    /// the per-ack cube root.
    k: f64,
}

impl Cubic {
    /// Creates a CUBIC controller starting from `initial_cwnd` segments.
    pub fn new(initial_cwnd: u32, initial_ssthresh: u32) -> Self {
        Cubic::with_beta(initial_cwnd, initial_ssthresh, 0.7)
    }

    /// Creates a CUBIC controller with a custom decrease factor.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` lies in `(0, 1)`.
    pub fn with_beta(initial_cwnd: u32, initial_ssthresh: u32, beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta < 1.0,
            "beta must be in (0,1), got {beta}"
        );
        let c = 0.4;
        Cubic {
            cwnd: initial_cwnd.max(1) as f64,
            ssthresh: initial_ssthresh as f64,
            w_max: 0.0,
            epoch_start: None,
            beta,
            c,
            k: (0.0f64 * (1.0 - beta) / c).cbrt(),
        }
    }

    /// The cubic target window at time `t` seconds into the epoch.
    fn target(&self, t: f64) -> f64 {
        self.w_max + self.c * (t - self.k).powi(3)
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, newly_acked: u64, now: SimTime, _srtt: Option<SimDuration>) {
        let mut remaining = newly_acked as f64;
        if self.cwnd < self.ssthresh {
            let ss_room = (self.ssthresh - self.cwnd).min(remaining);
            self.cwnd += ss_room;
            remaining -= ss_room;
            if remaining <= 0.0 {
                return;
            }
        }
        // Congestion avoidance: chase the cubic target.
        let epoch_start = *self.epoch_start.get_or_insert_with(|| {
            // Fresh epoch without a prior loss (e.g. ssthresh hit from
            // metric): treat the current window as the plateau.
            if self.w_max < self.cwnd {
                self.w_max = self.cwnd;
                self.k = (self.w_max * (1.0 - self.beta) / self.c).cbrt();
            }
            now
        });
        let t = (now.saturating_since(epoch_start)).as_secs_f64();
        // RFC 8312 §4.1: the target is clamped to 1.5·cwnd per RTT so a
        // long quiet epoch cannot explode the window in one burst.
        let target = self.target(t).min(self.cwnd * 1.5);
        if target > self.cwnd {
            // Move a fraction of the gap per acked segment, as Linux does.
            self.cwnd += remaining * (target - self.cwnd) / self.cwnd;
        } else {
            // Concave plateau: creep forward very slowly.
            self.cwnd += remaining * 0.01 / self.cwnd;
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        self.w_max = self.cwnd;
        self.k = (self.w_max * (1.0 - self.beta) / self.c).cbrt();
        self.ssthresh = (self.cwnd * self.beta).max(2.0);
        self.cwnd = self.ssthresh;
        self.epoch_start = Some(now);
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.w_max = self.cwnd;
        self.k = (self.w_max * (1.0 - self.beta) / self.c).cbrt();
        self.ssthresh = (self.cwnd * self.beta).max(2.0);
        self.cwnd = 1.0;
        self.epoch_start = Some(now);
    }

    fn on_idle_restart(&mut self, initial_cwnd: u32) {
        self.cwnd = self.cwnd.min(initial_cwnd.max(1) as f64);
        self.epoch_start = None;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

/// Builds the controller named by `algo`, starting from `initial_cwnd`.
pub fn build(
    algo: crate::config::CcAlgorithm,
    initial_cwnd: u32,
    initial_ssthresh: u32,
) -> Box<dyn CongestionControl> {
    match algo {
        crate::config::CcAlgorithm::Reno => Box::new(Reno::new(initial_cwnd, initial_ssthresh)),
        crate::config::CcAlgorithm::Cubic => Box::new(Cubic::new(initial_cwnd, initial_ssthresh)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_round() {
        let mut cc = Reno::new(10, u32::MAX);
        // Acking a full window in slow start doubles it.
        cc.on_ack(10, SimTime::ZERO, None);
        assert_eq!(cc.cwnd(), 20.0);
        cc.on_ack(20, SimTime::ZERO, None);
        assert_eq!(cc.cwnd(), 40.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut cc = Reno::new(10, 10);
        assert!(!cc.in_slow_start());
        // One full window of acks grows cwnd by ~1.
        let before = cc.cwnd();
        cc.on_ack(10, SimTime::ZERO, None);
        assert!((cc.cwnd() - before - 1.0).abs() < 0.01);
    }

    #[test]
    fn reno_crosses_ssthresh_exactly() {
        let mut cc = Reno::new(8, 12);
        cc.on_ack(8, SimTime::ZERO, None);
        // 4 acks exhaust slow start (8 -> 12), 4 land in CA.
        assert!(cc.cwnd() > 12.0 && cc.cwnd() < 13.0, "cwnd {}", cc.cwnd());
    }

    #[test]
    fn reno_loss_halves() {
        let mut cc = Reno::new(100, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 50.0);
        assert_eq!(cc.ssthresh(), 50.0);
    }

    #[test]
    fn reno_timeout_collapses_to_one() {
        let mut cc = Reno::new(100, u32::MAX);
        cc.on_timeout(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 1.0);
        assert_eq!(cc.ssthresh(), 50.0);
    }

    #[test]
    fn reno_floor_at_two() {
        let mut cc = Reno::new(1, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        assert_eq!(cc.ssthresh(), 2.0);
    }

    #[test]
    fn cubic_slow_start_matches_reno() {
        let mut cc = Cubic::new(10, u32::MAX);
        cc.on_ack(10, SimTime::ZERO, None);
        assert_eq!(cc.cwnd(), 20.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn cubic_loss_scales_by_beta() {
        let mut cc = Cubic::new(100, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        assert!((cc.cwnd() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_recovers_toward_w_max() {
        let mut cc = Cubic::new(100, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        let floor = cc.cwnd();
        // Ack steadily for 20 simulated seconds.
        let mut now = SimTime::ZERO;
        for _ in 0..2000 {
            now += SimDuration::from_millis(10);
            cc.on_ack(5, now, None);
        }
        assert!(cc.cwnd() > floor, "cubic should grow after loss");
        assert!(
            cc.cwnd() > 95.0,
            "cubic should approach w_max=100 after a long epoch, got {}",
            cc.cwnd()
        );
    }

    #[test]
    fn cubic_growth_accelerates_past_plateau() {
        let mut cc = Cubic::new(100, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        // Run long enough to pass K and enter the convex region.
        for _ in 0..6000 {
            now += SimDuration::from_millis(10);
            cc.on_ack(5, now, None);
        }
        assert!(cc.cwnd() > 100.0, "past plateau cwnd {}", cc.cwnd());
    }

    #[test]
    fn cubic_idle_restart_caps_at_initial() {
        let mut cc = Cubic::new(10, u32::MAX);
        cc.on_ack(50, SimTime::ZERO, None);
        cc.on_idle_restart(10);
        assert_eq!(cc.cwnd(), 10.0);
    }

    #[test]
    fn build_dispatches_on_algorithm() {
        use crate::config::CcAlgorithm;
        assert_eq!(build(CcAlgorithm::Reno, 10, 100).name(), "reno");
        assert_eq!(build(CcAlgorithm::Cubic, 10, 100).name(), "cubic");
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn cubic_rejects_bad_beta() {
        let _ = Cubic::with_beta(10, 100, 1.5);
    }
}
