//! Congestion-control algorithms: the window-growth side of TCP.
//!
//! The sender state machine ([`crate::tcp::sender::Sender`]) handles loss
//! detection, retransmission and pacing; it delegates *how fast the window
//! grows and shrinks* to a [`CongestionControl`] implementation. Two are
//! provided, matching the paper's setting (Linux default CUBIC) and the
//! classical baseline (Reno).
//!
//! Riptide never changes these algorithms — it only chooses the *initial*
//! window they start from, exactly as §III-B emphasizes.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Window-growth policy for one connection.
///
/// Windows are expressed in segments as `f64` so sub-segment growth in
/// congestion avoidance accumulates exactly; the sender floors the value
/// when deciding how many segments may be in flight.
pub trait CongestionControl: fmt::Debug {
    /// Current congestion window, in segments (≥ 1).
    fn cwnd(&self) -> f64;

    /// Current slow-start threshold, in segments.
    fn ssthresh(&self) -> f64;

    /// Whether the window is still in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// Called when `newly_acked` segments are cumulatively acknowledged.
    fn on_ack(&mut self, newly_acked: u64, now: SimTime, srtt: Option<SimDuration>);

    /// Called once when loss is detected by triple duplicate ACK
    /// (multiplicative decrease; the sender then enters fast recovery).
    fn on_loss(&mut self, now: SimTime);

    /// Called once per RTT when the peer echoes an ECN mark (RFC 3168
    /// ECE). The default reacts exactly like a loss — the classical
    /// ECN response — without any retransmission happening; model-based
    /// controllers may respond more gently.
    fn on_ecn(&mut self, now: SimTime) {
        self.on_loss(now);
    }

    /// Called on retransmission timeout (collapse to one segment).
    fn on_timeout(&mut self, now: SimTime);

    /// Called when a long idle period requires restarting from the initial
    /// window (`tcp_slow_start_after_idle`).
    fn on_idle_restart(&mut self, initial_cwnd: u32);

    /// The algorithm's short name (`"reno"` / `"cubic"`), as `ss` prints.
    fn name(&self) -> &'static str;
}

/// Classic Reno/NewReno AIMD.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// Creates a Reno controller starting from `initial_cwnd` segments.
    pub fn new(initial_cwnd: u32, initial_ssthresh: u32) -> Self {
        Reno {
            cwnd: initial_cwnd.max(1) as f64,
            ssthresh: initial_ssthresh as f64,
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, newly_acked: u64, _now: SimTime, _srtt: Option<SimDuration>) {
        let mut remaining = newly_acked as f64;
        // Slow start consumes acks one segment per segment until ssthresh.
        if self.cwnd < self.ssthresh {
            let ss_room = (self.ssthresh - self.cwnd).min(remaining);
            self.cwnd += ss_room;
            remaining -= ss_room;
        }
        // Congestion avoidance: +1/cwnd per acked segment.
        if remaining > 0.0 {
            self.cwnd += remaining / self.cwnd;
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd * 0.5).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd * 0.5).max(2.0);
        self.cwnd = 1.0;
    }

    fn on_idle_restart(&mut self, initial_cwnd: u32) {
        self.cwnd = self.cwnd.min(initial_cwnd.max(1) as f64);
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// TCP CUBIC (RFC 8312-style window growth, without the TCP-friendliness
/// fallback region, which never binds on the high-BDP inter-DC paths this
/// simulator targets).
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Multiplicative decrease factor (0.7 per RFC 8312).
    beta: f64,
    /// CUBIC aggressiveness constant.
    c: f64,
    /// Memoized `K = cbrt(w_max·(1−beta)/c)`, refreshed whenever `w_max`
    /// changes — the same bits recomputing per ack would produce, without
    /// the per-ack cube root.
    k: f64,
}

impl Cubic {
    /// Creates a CUBIC controller starting from `initial_cwnd` segments.
    pub fn new(initial_cwnd: u32, initial_ssthresh: u32) -> Self {
        Cubic::with_beta(initial_cwnd, initial_ssthresh, 0.7)
    }

    /// Creates a CUBIC controller with a custom decrease factor.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` lies in `(0, 1)`.
    pub fn with_beta(initial_cwnd: u32, initial_ssthresh: u32, beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta < 1.0,
            "beta must be in (0,1), got {beta}"
        );
        let c = 0.4;
        Cubic {
            cwnd: initial_cwnd.max(1) as f64,
            ssthresh: initial_ssthresh as f64,
            w_max: 0.0,
            epoch_start: None,
            beta,
            c,
            k: (0.0f64 * (1.0 - beta) / c).cbrt(),
        }
    }

    /// The cubic target window at time `t` seconds into the epoch.
    fn target(&self, t: f64) -> f64 {
        self.w_max + self.c * (t - self.k).powi(3)
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, newly_acked: u64, now: SimTime, _srtt: Option<SimDuration>) {
        let mut remaining = newly_acked as f64;
        if self.cwnd < self.ssthresh {
            let ss_room = (self.ssthresh - self.cwnd).min(remaining);
            self.cwnd += ss_room;
            remaining -= ss_room;
            if remaining <= 0.0 {
                return;
            }
        }
        // Congestion avoidance: chase the cubic target.
        let epoch_start = *self.epoch_start.get_or_insert_with(|| {
            // Fresh epoch without a prior loss (e.g. ssthresh hit from
            // metric): treat the current window as the plateau.
            if self.w_max < self.cwnd {
                self.w_max = self.cwnd;
                self.k = (self.w_max * (1.0 - self.beta) / self.c).cbrt();
            }
            now
        });
        let t = (now.saturating_since(epoch_start)).as_secs_f64();
        // RFC 8312 §4.1: the target is clamped to 1.5·cwnd per RTT so a
        // long quiet epoch cannot explode the window in one burst.
        let target = self.target(t).min(self.cwnd * 1.5);
        if target > self.cwnd {
            // Move a fraction of the gap per acked segment, as Linux does.
            self.cwnd += remaining * (target - self.cwnd) / self.cwnd;
        } else {
            // Concave plateau: creep forward very slowly.
            self.cwnd += remaining * 0.01 / self.cwnd;
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        self.w_max = self.cwnd;
        self.k = (self.w_max * (1.0 - self.beta) / self.c).cbrt();
        self.ssthresh = (self.cwnd * self.beta).max(2.0);
        self.cwnd = self.ssthresh;
        self.epoch_start = Some(now);
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.w_max = self.cwnd;
        self.k = (self.w_max * (1.0 - self.beta) / self.c).cbrt();
        self.ssthresh = (self.cwnd * self.beta).max(2.0);
        self.cwnd = 1.0;
        self.epoch_start = Some(now);
    }

    fn on_idle_restart(&mut self, initial_cwnd: u32) {
        self.cwnd = self.cwnd.min(initial_cwnd.max(1) as f64);
        self.epoch_start = None;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

/// Gain cycle the paced controller walks in steady state: one probing
/// phase, one draining phase, six cruise phases (BBR's ProbeBW cycle).
const PACING_GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// How long a bandwidth-estimate maximum stays valid without being
/// refreshed, and how often a probing phase re-measures min RTT.
const BW_FILTER_WINDOW: SimDuration = SimDuration::from_secs(10);

/// A BBR-like model-based controller: estimates the bottleneck
/// bandwidth (windowed-max of delivery-rate samples) and the round-trip
/// propagation delay (windowed-min of RTT samples), and sets the window
/// from their product instead of from loss events.
///
/// The simulator's sender is window-clocked rather than timer-paced, so
/// the pacing-gain cycle is expressed through the *window*: each phase
/// lasts one `rtprop` and scales the BDP-derived window by its gain —
/// 1.25 probes for more bandwidth, 0.75 drains the queue the probe
/// built, the remaining six phases cruise at the estimate. Loss barely
/// moves it (the model, not the loss signal, sets the rate), which is
/// exactly the behavioural contrast with Reno/CUBIC the scenario matrix
/// wants; a retransmission timeout still collapses to one segment.
#[derive(Debug, Clone)]
pub struct Paced {
    cwnd: f64,
    ssthresh: f64,
    /// Bottleneck bandwidth estimate, segments per second.
    btl_bw: f64,
    /// When `btl_bw` was last raised (max-filter freshness).
    btl_bw_stamp: SimTime,
    /// Round-trip propagation estimate (min filter over RTT samples).
    rtprop: Option<SimDuration>,
    /// Start of the current gain-cycle phase.
    phase_start: SimTime,
    /// Index into [`PACING_GAIN_CYCLE`].
    phase: usize,
    /// Startup state: double per RTT until the bandwidth estimate stops
    /// growing, as BBR's Startup does.
    in_startup: bool,
    /// Best bandwidth seen while judging startup progress.
    full_bw: f64,
    /// Consecutive judgement rounds without ≥ 25% bandwidth growth.
    full_bw_count: u32,
    /// Start of the current delivery-rate sampling round.
    round_start: SimTime,
    /// Segments acknowledged since `round_start`.
    round_delivered: f64,
}

impl Paced {
    /// Creates a paced controller starting from `initial_cwnd` segments.
    pub fn new(initial_cwnd: u32, initial_ssthresh: u32) -> Self {
        Paced {
            cwnd: initial_cwnd.max(1) as f64,
            ssthresh: initial_ssthresh as f64,
            btl_bw: 0.0,
            btl_bw_stamp: SimTime::ZERO,
            rtprop: None,
            phase_start: SimTime::ZERO,
            phase: 0,
            in_startup: true,
            full_bw: 0.0,
            full_bw_count: 0,
            round_start: SimTime::ZERO,
            round_delivered: 0.0,
        }
    }

    /// Bandwidth-delay product in segments, once both estimates exist.
    fn bdp(&self) -> Option<f64> {
        let rtprop = self.rtprop?;
        (self.btl_bw > 0.0).then(|| self.btl_bw * rtprop.as_secs_f64())
    }
}

impl CongestionControl for Paced {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn in_slow_start(&self) -> bool {
        // The model's Startup phase, not the cwnd/ssthresh comparison:
        // in steady state the window cruises below the startup-exit
        // ssthresh by design.
        self.in_startup
    }

    fn on_ack(&mut self, newly_acked: u64, now: SimTime, srtt: Option<SimDuration>) {
        let Some(srtt) = srtt else {
            // No RTT sample yet: grow like slow start until the model
            // has inputs.
            self.cwnd += newly_acked as f64;
            return;
        };
        // Update the two model filters. Bandwidth is sampled per *round*
        // — segments delivered over a full smoothed RTT — not per ack: a
        // single ack covers only its own batch, and dividing that by the
        // whole RTT undercounts the pipe by the ack rate (a window of 50
        // acked two segments at a time would measure 2/RTT, collapse the
        // BDP estimate to ~2 segments, and drag the window down with it).
        if self.rtprop.is_none_or(|r| srtt < r) {
            self.rtprop = Some(srtt);
        }
        self.round_delivered += newly_acked as f64;
        let elapsed = now.saturating_since(self.round_start);
        let round_done = elapsed >= srtt;
        if round_done {
            let sample_bw = self.round_delivered / elapsed.as_secs_f64().max(1e-9);
            if sample_bw >= self.btl_bw
                || now.saturating_since(self.btl_bw_stamp) > BW_FILTER_WINDOW
            {
                self.btl_bw = sample_bw;
                self.btl_bw_stamp = now;
            }
            self.round_delivered = 0.0;
            self.round_start = now;
        }

        if self.in_startup {
            // Double per round trip, exiting when three consecutive
            // rounds have seen < 25% bandwidth growth (the pipe is full).
            self.cwnd += newly_acked as f64;
            if round_done {
                if self.btl_bw >= self.full_bw * 1.25 {
                    self.full_bw = self.btl_bw;
                    self.full_bw_count = 0;
                } else {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= 3 {
                        self.in_startup = false;
                        self.ssthresh = self.cwnd;
                        self.phase_start = now;
                    }
                }
            }
            return;
        }

        let Some(bdp) = self.bdp() else { return };
        // Advance the gain cycle, one rtprop per phase.
        let rtprop = self.rtprop.expect("bdp() required it");
        if now.saturating_since(self.phase_start) >= rtprop {
            self.phase = (self.phase + 1) % PACING_GAIN_CYCLE.len();
            self.phase_start = now;
        }
        // Window from the model: gain × BDP plus headroom so acks keep
        // flowing (BBR's cwnd_gain floor of ~2 compressed to +2 here —
        // the sim has no aggregation/offload batching to absorb).
        let target = (PACING_GAIN_CYCLE[self.phase] * bdp + 2.0).max(4.0);
        // Move toward the target by at most newly_acked per ack, so the
        // window stays ack-clocked rather than jumping.
        let step = newly_acked as f64;
        if target > self.cwnd {
            self.cwnd = (self.cwnd + step).min(target);
        } else {
            self.cwnd = (self.cwnd - step).max(target);
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        // The model, not the loss, sets the rate: shave a little to
        // stay live under persistent overload, but no AIMD halving.
        self.cwnd = (self.cwnd * 0.85).max(4.0);
        self.ssthresh = self.cwnd;
        self.in_startup = false;
    }

    fn on_ecn(&mut self, _now: SimTime) {
        // Same mild response: the mark confirms a standing queue, which
        // the 0.75 drain phase already handles in steady state.
        self.cwnd = (self.cwnd * 0.85).max(4.0);
        self.ssthresh = self.cwnd;
        self.in_startup = false;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.ssthresh = (self.cwnd * 0.5).max(2.0);
        self.cwnd = 1.0;
        self.in_startup = true;
        self.full_bw = 0.0;
        self.full_bw_count = 0;
        self.round_start = now;
        self.round_delivered = 0.0;
    }

    fn on_idle_restart(&mut self, initial_cwnd: u32) {
        self.cwnd = self.cwnd.min(initial_cwnd.max(1) as f64);
    }

    fn name(&self) -> &'static str {
        "paced"
    }
}

/// Builds the controller named by `algo`, starting from `initial_cwnd`.
pub fn build(
    algo: crate::config::CcAlgorithm,
    initial_cwnd: u32,
    initial_ssthresh: u32,
) -> Box<dyn CongestionControl> {
    match algo {
        crate::config::CcAlgorithm::Reno => Box::new(Reno::new(initial_cwnd, initial_ssthresh)),
        crate::config::CcAlgorithm::Cubic => Box::new(Cubic::new(initial_cwnd, initial_ssthresh)),
        crate::config::CcAlgorithm::Paced => Box::new(Paced::new(initial_cwnd, initial_ssthresh)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_round() {
        let mut cc = Reno::new(10, u32::MAX);
        // Acking a full window in slow start doubles it.
        cc.on_ack(10, SimTime::ZERO, None);
        assert_eq!(cc.cwnd(), 20.0);
        cc.on_ack(20, SimTime::ZERO, None);
        assert_eq!(cc.cwnd(), 40.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut cc = Reno::new(10, 10);
        assert!(!cc.in_slow_start());
        // One full window of acks grows cwnd by ~1.
        let before = cc.cwnd();
        cc.on_ack(10, SimTime::ZERO, None);
        assert!((cc.cwnd() - before - 1.0).abs() < 0.01);
    }

    #[test]
    fn reno_crosses_ssthresh_exactly() {
        let mut cc = Reno::new(8, 12);
        cc.on_ack(8, SimTime::ZERO, None);
        // 4 acks exhaust slow start (8 -> 12), 4 land in CA.
        assert!(cc.cwnd() > 12.0 && cc.cwnd() < 13.0, "cwnd {}", cc.cwnd());
    }

    #[test]
    fn reno_loss_halves() {
        let mut cc = Reno::new(100, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 50.0);
        assert_eq!(cc.ssthresh(), 50.0);
    }

    #[test]
    fn reno_timeout_collapses_to_one() {
        let mut cc = Reno::new(100, u32::MAX);
        cc.on_timeout(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 1.0);
        assert_eq!(cc.ssthresh(), 50.0);
    }

    #[test]
    fn reno_floor_at_two() {
        let mut cc = Reno::new(1, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        assert_eq!(cc.ssthresh(), 2.0);
    }

    #[test]
    fn cubic_slow_start_matches_reno() {
        let mut cc = Cubic::new(10, u32::MAX);
        cc.on_ack(10, SimTime::ZERO, None);
        assert_eq!(cc.cwnd(), 20.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn cubic_loss_scales_by_beta() {
        let mut cc = Cubic::new(100, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        assert!((cc.cwnd() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_recovers_toward_w_max() {
        let mut cc = Cubic::new(100, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        let floor = cc.cwnd();
        // Ack steadily for 20 simulated seconds.
        let mut now = SimTime::ZERO;
        for _ in 0..2000 {
            now += SimDuration::from_millis(10);
            cc.on_ack(5, now, None);
        }
        assert!(cc.cwnd() > floor, "cubic should grow after loss");
        assert!(
            cc.cwnd() > 95.0,
            "cubic should approach w_max=100 after a long epoch, got {}",
            cc.cwnd()
        );
    }

    #[test]
    fn cubic_growth_accelerates_past_plateau() {
        let mut cc = Cubic::new(100, u32::MAX);
        cc.on_loss(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        // Run long enough to pass K and enter the convex region.
        for _ in 0..6000 {
            now += SimDuration::from_millis(10);
            cc.on_ack(5, now, None);
        }
        assert!(cc.cwnd() > 100.0, "past plateau cwnd {}", cc.cwnd());
    }

    #[test]
    fn cubic_idle_restart_caps_at_initial() {
        let mut cc = Cubic::new(10, u32::MAX);
        cc.on_ack(50, SimTime::ZERO, None);
        cc.on_idle_restart(10);
        assert_eq!(cc.cwnd(), 10.0);
    }

    #[test]
    fn build_dispatches_on_algorithm() {
        use crate::config::CcAlgorithm;
        assert_eq!(build(CcAlgorithm::Reno, 10, 100).name(), "reno");
        assert_eq!(build(CcAlgorithm::Cubic, 10, 100).name(), "cubic");
        assert_eq!(build(CcAlgorithm::Paced, 10, 100).name(), "paced");
    }

    /// Drives a paced controller to a steady bandwidth: `bw` segments
    /// per `rtt`, acked once per rtt for `rounds` rounds.
    fn drive_paced(cc: &mut Paced, bw_per_rtt: u64, rtt_ms: u64, rounds: u32) -> SimTime {
        let mut now = SimTime::ZERO;
        for _ in 0..rounds {
            now += SimDuration::from_millis(rtt_ms);
            cc.on_ack(bw_per_rtt, now, Some(SimDuration::from_millis(rtt_ms)));
        }
        now
    }

    #[test]
    fn paced_startup_grows_then_exits() {
        let mut cc = Paced::new(10, u32::MAX);
        assert!(cc.in_slow_start());
        // Constant delivery rate: startup ends after three flat rounds.
        drive_paced(&mut cc, 50, 40, 10);
        assert!(!cc.in_slow_start(), "startup exited on flat bandwidth");
    }

    #[test]
    fn paced_settles_near_the_bdp() {
        let mut cc = Paced::new(10, u32::MAX);
        // 50 segments per 40 ms RTT → BDP is 50 segments.
        drive_paced(&mut cc, 50, 40, 100);
        let bdp = 50.0;
        assert!(
            cc.cwnd() > bdp * 0.7 && cc.cwnd() < bdp * 1.5,
            "cwnd {} should track the ~{bdp}-segment BDP",
            cc.cwnd()
        );
    }

    #[test]
    fn paced_shrugs_off_loss_but_collapses_on_timeout() {
        let mut cc = Paced::new(10, u32::MAX);
        let now = drive_paced(&mut cc, 50, 40, 100);
        let before = cc.cwnd();
        cc.on_loss(now);
        assert!(
            cc.cwnd() > before * 0.8,
            "loss is a nudge, not a halving: {} -> {}",
            before,
            cc.cwnd()
        );
        cc.on_timeout(now);
        assert_eq!(cc.cwnd(), 1.0, "RTO still collapses the window");
    }

    #[test]
    fn paced_gain_cycle_probes_and_drains() {
        let mut cc = Paced::new(10, u32::MAX);
        drive_paced(&mut cc, 50, 40, 20);
        // Walk whole cycles, recording the window at every phase.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut now = SimTime::from_millis(20 * 40);
        for _ in 0..64 {
            now += SimDuration::from_millis(40);
            cc.on_ack(50, now, Some(SimDuration::from_millis(40)));
            lo = lo.min(cc.cwnd());
            hi = hi.max(cc.cwnd());
        }
        assert!(
            hi > lo + 1.0,
            "the gain cycle should wobble the window: lo {lo} hi {hi}"
        );
    }

    #[test]
    fn default_on_ecn_reacts_like_loss() {
        let mut reno = Reno::new(100, u32::MAX);
        reno.on_ecn(SimTime::ZERO);
        assert_eq!(
            reno.cwnd(),
            50.0,
            "Reno's ECE response is its loss response"
        );
        let mut cubic = Cubic::new(100, u32::MAX);
        cubic.on_ecn(SimTime::ZERO);
        assert!((cubic.cwnd() - 70.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn cubic_rejects_bad_beta() {
        let _ = Cubic::with_beta(10, 100, 1.5);
    }
}
