//! Simulated TCP: RTT estimation, congestion control, sender and receiver
//! state machines.
//!
//! The split mirrors a real stack: [`sender::Sender`] owns reliability and
//! loss recovery, [`controller`] owns window growth (Reno / CUBIC),
//! [`rtt::RttEstimator`] owns RFC 6298 timing, and [`receiver::Receiver`]
//! owns reassembly and the advertised window. The piece Riptide touches —
//! the *initial* congestion window — is a constructor parameter of
//! [`sender::Sender::new`], exactly as in Linux it is a route attribute
//! consumed at connection establishment.

pub mod controller;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use controller::{CongestionControl, Cubic, Reno};
pub use receiver::Receiver;
pub use rtt::RttEstimator;
pub use sender::{Outgoing, Sender, SenderPhase, TimerRequest};
