//! Observable outputs of a simulation: per-connection snapshots (the
//! simulated analogue of `ss -i` rows) and completed-transfer records.

use std::net::Ipv4Addr;

use crate::conn::ConnState;
use crate::ids::{ConnId, HostId, PopId, TransferId};
use crate::time::{SimDuration, SimTime};

/// A point-in-time snapshot of one connection, shaped like the fields
/// Riptide reads from `ss -i`: destination, current congestion window,
/// smoothed RTT and bytes acknowledged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnStats {
    /// Connection identity.
    pub conn: ConnId,
    /// Originating host.
    pub src: HostId,
    /// Remote host.
    pub dst: HostId,
    /// Local address.
    pub src_addr: Ipv4Addr,
    /// Remote address — the key Riptide groups on.
    pub dst_addr: Ipv4Addr,
    /// Lifecycle state.
    pub state: ConnState,
    /// Congestion window in segments, as `ss` reports (`cwnd:`).
    pub cwnd: u32,
    /// Slow-start threshold in segments (`ssthresh:`; `u32::MAX` = unset).
    pub ssthresh: u32,
    /// Smoothed RTT, once measured (`rtt:`).
    pub srtt: Option<SimDuration>,
    /// Approximate bytes acknowledged so far (`bytes_acked:`).
    pub bytes_acked: u64,
    /// Segments placed on the wire as retransmissions so far, fast and
    /// timeout-driven combined — the cumulative count `ss` reports after
    /// the slash in `retrans:0/N`. The loss signal the guard layer
    /// differentiates.
    pub retransmits: u64,
    /// Window reductions taken in response to ECN echoes — congestion
    /// signalled without loss, so this and `retransmits` diverge under a
    /// marking AQM.
    pub ece_reductions: u64,
    /// The initial congestion window the connection started with.
    pub initial_cwnd: u32,
    /// When the connection was opened.
    pub opened_at: SimTime,
    /// When the handshake completed, if it has.
    pub established_at: Option<SimTime>,
}

/// The outcome of one completed application transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Transfer identity.
    pub transfer: TransferId,
    /// Connection that carried it.
    pub conn: ConnId,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Sending PoP.
    pub src_pop: PopId,
    /// Receiving PoP.
    pub dst_pop: PopId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// When the application asked for the transfer.
    pub requested_at: SimTime,
    /// When data first entered the send buffer (after any handshake wait).
    pub started_at: SimTime,
    /// When the final byte was acknowledged.
    pub completed_at: SimTime,
    /// Whether a new connection (with handshake) was opened for this
    /// transfer, as opposed to reusing an idle one.
    pub fresh_connection: bool,
    /// The initial congestion window of the carrying connection.
    pub initial_cwnd: u32,
}

impl TransferRecord {
    /// End-to-end completion time as the application experienced it
    /// (includes handshake wait for fresh connections) — the quantity the
    /// paper's probe figures plot.
    pub fn completion_time(&self) -> SimDuration {
        self.completed_at.saturating_since(self.requested_at)
    }

    /// Time spent moving data only (excludes handshake wait).
    pub fn data_time(&self) -> SimDuration {
        self.completed_at.saturating_since(self.started_at)
    }
}

/// World-wide counters, useful for throughput benchmarks and sanity
/// assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Events processed by the loop.
    pub events_processed: u64,
    /// Data segments delivered to receivers.
    pub segments_delivered: u64,
    /// ACKs delivered to senders.
    pub acks_delivered: u64,
    /// Connections opened.
    pub connections_opened: u64,
    /// Transfers completed.
    pub transfers_completed: u64,
    /// Segments placed on the wire as retransmissions (fast or
    /// timeout-driven), summed across all connections.
    pub retransmits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_and_data_time() {
        let r = TransferRecord {
            transfer: TransferId::from_index(0),
            conn: ConnId::from_index(0),
            src: HostId::from_index(0),
            dst: HostId::from_index(1),
            src_pop: PopId::from_index(0),
            dst_pop: PopId::from_index(1),
            bytes: 50_000,
            requested_at: SimTime::from_millis(0),
            started_at: SimTime::from_millis(100),
            completed_at: SimTime::from_millis(350),
            fresh_connection: true,
            initial_cwnd: 10,
        };
        assert_eq!(r.completion_time(), SimDuration::from_millis(350));
        assert_eq!(r.data_time(), SimDuration::from_millis(250));
    }
}
