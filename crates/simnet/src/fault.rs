//! Deterministic fault injection (the chaos layer).
//!
//! Production Riptide agents live on hosts where `ss` polls time out or
//! return truncated tables, `ip route` invocations fail or land late,
//! daemons crash and restart with their learned state gone, and links go
//! through loss bursts. A [`FaultPlan`] describes how often each of those
//! happens; a [`FaultInjector`] turns the plan into a deterministic
//! sequence of fault decisions drawn from [`DetRng`] streams forked off
//! the owning shard's seed — so chaos runs are exactly as reproducible as
//! clean ones.
//!
//! Two properties the experiment engine relies on:
//!
//! * **Zero is free.** [`DetRng::chance`] consumes no draw at `p = 0`,
//!   and forking a stream never advances its parent, so a disabled plan
//!   ([`FaultPlan::none`]) leaves every other RNG stream — and therefore
//!   the whole simulation — bit-identical to a build without the fault
//!   layer.
//! * **Category independence.** Each fault category draws from its own
//!   forked stream, so (for example) the link-burst schedule of a control
//!   run matches the riptide run with the same seed even though only the
//!   latter draws agent-facing faults.

use crate::rng::DetRng;
use crate::time::SimDuration;

/// Fault rates and shape parameters for one simulated deployment.
///
/// All `*_rate` fields are probabilities in `[0, 1]`, evaluated once per
/// opportunity: per observation poll, per route install, per agent tick
/// (crash), and per burst-check interval (link bursts).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that an `ss` poll times out entirely (per attempt).
    pub observe_timeout: f64,
    /// Probability that a poll returns truncated (partial) output.
    pub observe_partial: f64,
    /// Probability that an `ip route` invocation fails (per attempt).
    pub install_error: f64,
    /// Probability that a route install is accepted but applied late.
    pub install_delay: f64,
    /// How late a delayed install lands.
    pub install_delay_for: SimDuration,
    /// Probability, per agent tick, that the agent crashes and loses its
    /// learned table.
    pub crash: f64,
    /// Downtime between a crash and the restarted agent's first tick.
    pub restart_after: SimDuration,
    /// Whether a crash also resets the host's TCP connections — a
    /// machine restart (power cycle, kernel panic) rather than a daemon
    /// crash. A restarted daemon on a surviving machine re-learns its
    /// table within a poll or two from still-established connections; a
    /// restarted *machine* has nothing to observe until traffic returns,
    /// which is the cold-start ramp the `coldstart` experiment measures.
    pub crash_resets_connections: bool,
    /// Probability, per burst-check interval, that a randomly chosen
    /// link enters a loss burst.
    pub burst_start: f64,
    /// Packet loss rate applied to a link while a burst is active.
    pub burst_loss: f64,
    /// Burst duration.
    pub burst_for: SimDuration,
    /// How often burst start/stop decisions are evaluated.
    pub burst_check_every: SimDuration,
    /// Probability, per agent tick, that an external actor perturbs the
    /// kernel route table behind the agent's back: deleting one of the
    /// agent's installs, or injecting an orphan/foreign route (the drift
    /// a reconciler audit must repair).
    pub route_churn: f64,
    /// Probability, per jump-start install, that the destination's path
    /// immediately enters a loss episode — the adversarial case for the
    /// loss guard, where the learned window itself becomes the harm.
    pub targeted_loss: f64,
    /// Packet loss rate applied during a targeted loss episode.
    pub targeted_loss_rate: f64,
    /// Targeted loss episode duration.
    pub targeted_loss_for: SimDuration,
}

impl FaultPlan {
    /// The disabled plan: every rate is zero and the injector never
    /// draws. This is the [`Default`].
    pub fn none() -> Self {
        FaultPlan {
            observe_timeout: 0.0,
            observe_partial: 0.0,
            install_error: 0.0,
            install_delay: 0.0,
            install_delay_for: SimDuration::from_secs(2),
            crash: 0.0,
            restart_after: SimDuration::from_secs(10),
            crash_resets_connections: false,
            burst_start: 0.0,
            burst_loss: 0.0,
            burst_for: SimDuration::from_secs(30),
            burst_check_every: SimDuration::from_secs(10),
            route_churn: 0.0,
            targeted_loss: 0.0,
            targeted_loss_rate: 0.25,
            // Long enough to cover a full default agent poll interval, so
            // the loss is visible in at least one observation window.
            targeted_loss_for: SimDuration::from_secs(90),
        }
    }

    /// The guardrail plan: only the closed-loop-safety categories fire —
    /// external route churn at `rate` per tick and a targeted loss
    /// episode following `rate` of jump-start installs. Everything the
    /// chaos sweep exercises (poll/install/crash/burst faults) stays
    /// zero, so guardrail runs isolate the new failure modes.
    pub fn guardrail(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} outside [0, 1]"
        );
        FaultPlan {
            route_churn: rate,
            targeted_loss: rate,
            ..FaultPlan::none()
        }
    }

    /// A bursts-only plan: transient link loss episodes fire at `rate`
    /// per check interval with 20% in-burst loss, and every other
    /// category stays zero. This is the overlay scenario specs use for
    /// "episodically lossy" regimes — the path itself misbehaves while
    /// agents, polls and installs stay healthy, so any policy-ranking
    /// shift is attributable to the wire alone.
    pub fn loss_bursts(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} outside [0, 1]"
        );
        FaultPlan {
            burst_start: rate,
            burst_loss: 0.2,
            ..FaultPlan::none()
        }
    }

    /// A plan with every per-opportunity rate set to `rate` — the knob the
    /// `chaos` binary sweeps.
    ///
    /// Crash probability is scaled down by 50× (a 20% fault rate would
    /// otherwise crash every fifth one-second tick, which models a
    /// dead host, not a flaky one): `uniform(0.20)` crashes each agent
    /// about once every 250 ticks. Bursts inflict `10 × rate` packet
    /// loss, capped at 30%.
    pub fn uniform(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} outside [0, 1]"
        );
        FaultPlan {
            observe_timeout: rate,
            observe_partial: rate,
            install_error: rate,
            install_delay: rate,
            crash: rate / 50.0,
            burst_start: rate,
            burst_loss: (rate * 10.0).min(0.3),
            ..FaultPlan::none()
        }
    }

    /// `true` if any fault category can ever fire.
    pub fn is_enabled(&self) -> bool {
        [
            self.observe_timeout,
            self.observe_partial,
            self.install_error,
            self.install_delay,
            self.crash,
            self.burst_start,
            self.route_churn,
            self.targeted_loss,
        ]
        .iter()
        .any(|&r| r > 0.0)
    }

    /// Checks that all rates are probabilities and durations are positive.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("observe_timeout", self.observe_timeout),
            ("observe_partial", self.observe_partial),
            ("install_error", self.install_error),
            ("install_delay", self.install_delay),
            ("crash", self.crash),
            ("burst_start", self.burst_start),
            ("burst_loss", self.burst_loss),
            ("route_churn", self.route_churn),
            ("targeted_loss", self.targeted_loss),
            ("targeted_loss_rate", self.targeted_loss_rate),
        ];
        for (name, r) in rates {
            if !(0.0..=1.0).contains(&r) || r.is_nan() {
                return Err(format!("{name} = {r} is not a probability"));
            }
        }
        if self.burst_check_every == SimDuration::ZERO {
            return Err("burst_check_every must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The outcome of one observation (`ss` poll) attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserveFault {
    /// The poll succeeded.
    None,
    /// The poll timed out; no rows were returned.
    Timeout,
    /// The poll returned truncated output: only the first `keep` rows
    /// survived.
    Partial {
        /// Number of leading rows that parsed before the truncation point.
        keep: usize,
    },
}

/// The outcome of one route-install (`ip route`) attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallFault {
    /// The install succeeded immediately.
    None,
    /// The `ip` subprocess failed (non-zero exit / spawn error).
    ExecError,
    /// The install was accepted but will only take effect after
    /// [`FaultPlan::install_delay_for`].
    Delayed,
}

/// What one route-churn event does to the kernel table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnFault {
    /// No churn this opportunity.
    None,
    /// Delete the `pick`-th (in key order) of the agent's installed
    /// routes — the "operator flushed our route" drift.
    DeleteInstalled {
        /// Index into the agent's installed routes, key-ordered.
        pick: usize,
    },
    /// Inject a route carrying Riptide's exact signature at a prefix the
    /// agent never learned — the "crashed predecessor's orphan" drift.
    InjectOrphan {
        /// Last octet of the orphan's destination host.
        octet: u8,
        /// The orphan's initcwnd value.
        window: u32,
    },
    /// Inject a route *without* Riptide's signature — foreign state the
    /// reconciler must observe but never touch.
    InjectForeign {
        /// Last octet of the foreign route's destination host.
        octet: u8,
    },
}

/// Counters for every fault the injector has fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Observation polls that timed out.
    pub observe_timeouts: u64,
    /// Observation polls that returned partial output.
    pub observe_partials: u64,
    /// Route installs that failed outright.
    pub install_errors: u64,
    /// Route installs that were delayed.
    pub install_delays: u64,
    /// Agent crashes.
    pub crashes: u64,
    /// Link loss bursts started.
    pub bursts: u64,
    /// External route-table churn events fired.
    pub route_churns: u64,
    /// Targeted loss episodes started on jump-started destinations.
    pub targeted_bursts: u64,
}

/// Draws deterministic fault decisions according to a [`FaultPlan`].
///
/// Each category owns an independent [`DetRng`] stream forked from the
/// seed RNG handed to [`FaultInjector::new`], so the draw cadence of one
/// category never perturbs another.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    observe_rng: DetRng,
    install_rng: DetRng,
    crash_rng: DetRng,
    burst_rng: DetRng,
    churn_rng: DetRng,
    targeted_rng: DetRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector drawing from streams forked off `rng`.
    ///
    /// `rng` itself is not advanced ([`DetRng::fork`] is pure), so
    /// attaching an injector to an existing simulation does not shift any
    /// of its random sequences.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, rng: &DetRng) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        FaultInjector {
            plan,
            observe_rng: rng.fork(0xFA01),
            install_rng: rng.fork(0xFA02),
            crash_rng: rng.fork(0xFA03),
            burst_rng: rng.fork(0xFA04),
            churn_rng: rng.fork(0xFA05),
            targeted_rng: rng.fork(0xFA06),
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counts of every fault fired so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides the fate of one observation poll that would return `rows`
    /// rows on success.
    pub fn observe_fault(&mut self, rows: usize) -> ObserveFault {
        if self.observe_rng.chance(self.plan.observe_timeout) {
            self.stats.observe_timeouts += 1;
            return ObserveFault::Timeout;
        }
        if rows > 0 && self.observe_rng.chance(self.plan.observe_partial) {
            self.stats.observe_partials += 1;
            return ObserveFault::Partial {
                keep: self.observe_rng.below(rows),
            };
        }
        ObserveFault::None
    }

    /// Decides the fate of one route-install attempt.
    pub fn install_fault(&mut self) -> InstallFault {
        if self.install_rng.chance(self.plan.install_error) {
            self.stats.install_errors += 1;
            return InstallFault::ExecError;
        }
        if self.install_rng.chance(self.plan.install_delay) {
            self.stats.install_delays += 1;
            return InstallFault::Delayed;
        }
        InstallFault::None
    }

    /// Decides whether the agent crashes on this tick.
    pub fn crashes_now(&mut self) -> bool {
        let crashed = self.crash_rng.chance(self.plan.crash);
        if crashed {
            self.stats.crashes += 1;
        }
        crashed
    }

    /// Decides whether a link loss burst starts at this burst check;
    /// on `Some`, the caller picks the link using the returned draw
    /// helper values `(a, b)` with `a != b` guaranteed when `pops >= 2`.
    pub fn burst_starts(&mut self, pops: usize) -> Option<(usize, usize)> {
        if pops < 2 || !self.burst_rng.chance(self.plan.burst_start) {
            return None;
        }
        self.stats.bursts += 1;
        let a = self.burst_rng.below(pops);
        let mut b = self.burst_rng.below(pops - 1);
        if b >= a {
            b += 1;
        }
        Some((a, b))
    }

    /// Decides whether (and how) external route churn strikes this tick,
    /// given how many routes the agent currently has `installed`.
    ///
    /// Deletions target an existing install; when there is nothing to
    /// delete the event falls through to an injection, so an enabled
    /// churn plan always produces drift.
    pub fn churn_fault(&mut self, installed: usize) -> ChurnFault {
        if !self.churn_rng.chance(self.plan.route_churn) {
            return ChurnFault::None;
        }
        self.stats.route_churns += 1;
        let kind = self.churn_rng.below(3);
        if kind == 0 && installed > 0 {
            return ChurnFault::DeleteInstalled {
                pick: self.churn_rng.below(installed),
            };
        }
        let octet = self.churn_rng.below(256) as u8;
        if kind == 1 {
            ChurnFault::InjectOrphan {
                octet,
                // An in-bounds-looking but stale window, like a crashed
                // predecessor would leave.
                window: 10 + self.churn_rng.below(91) as u32,
            }
        } else {
            ChurnFault::InjectForeign { octet }
        }
    }

    /// Decides whether a jump-start install is punished with a targeted
    /// loss episode on its destination's path.
    pub fn targeted_burst(&mut self) -> bool {
        let fired = self.targeted_rng.chance(self.plan.targeted_loss);
        if fired {
            self.stats.targeted_bursts += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_recognised_and_draw_free() {
        let plan = FaultPlan::none();
        assert!(!plan.is_enabled());
        let rng = DetRng::from_seed(7);
        let mut inj = FaultInjector::new(plan, &rng);
        // With all rates zero no stream is ever advanced, so every
        // decision is the no-fault one.
        for _ in 0..100 {
            assert_eq!(inj.observe_fault(5), ObserveFault::None);
            assert_eq!(inj.install_fault(), InstallFault::None);
            assert!(!inj.crashes_now());
            assert_eq!(inj.burst_starts(10), None);
            assert_eq!(inj.churn_fault(4), ChurnFault::None);
            assert!(!inj.targeted_burst());
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn forking_the_injector_does_not_advance_the_parent_stream() {
        let rng = DetRng::from_seed(99);
        let mut before = rng.clone();
        let _inj = FaultInjector::new(FaultPlan::uniform(0.5), &rng);
        let mut after = rng.clone();
        assert_eq!(before.next_u64(), after.next_u64());
    }

    #[test]
    fn uniform_plan_fires_all_categories() {
        let rng = DetRng::from_seed(42);
        let mut inj = FaultInjector::new(FaultPlan::uniform(0.5), &rng);
        for _ in 0..400 {
            inj.observe_fault(8);
            inj.install_fault();
            inj.crashes_now();
            inj.burst_starts(10);
        }
        let s = inj.stats();
        assert!(s.observe_timeouts > 0, "{s:?}");
        assert!(s.observe_partials > 0, "{s:?}");
        assert!(s.install_errors > 0, "{s:?}");
        assert!(s.install_delays > 0, "{s:?}");
        assert!(s.crashes > 0, "{s:?}");
        assert!(s.bursts > 0, "{s:?}");
    }

    #[test]
    fn loss_bursts_plan_fires_only_the_burst_category() {
        let plan = FaultPlan::loss_bursts(0.5);
        plan.validate().unwrap();
        assert!(plan.is_enabled());
        let rng = DetRng::from_seed(42);
        let mut inj = FaultInjector::new(plan, &rng);
        for _ in 0..400 {
            inj.observe_fault(8);
            inj.install_fault();
            inj.crashes_now();
            inj.burst_starts(10);
        }
        let s = inj.stats();
        assert!(s.bursts > 0, "{s:?}");
        assert_eq!(s.observe_timeouts, 0, "{s:?}");
        assert_eq!(s.observe_partials, 0, "{s:?}");
        assert_eq!(s.install_errors, 0, "{s:?}");
        assert_eq!(s.install_delays, 0, "{s:?}");
        assert_eq!(s.crashes, 0, "{s:?}");
        assert!(!FaultPlan::loss_bursts(0.0).is_enabled());
    }

    #[test]
    fn fault_sequences_are_deterministic() {
        let run = |seed: u64| {
            let rng = DetRng::from_seed(seed);
            let mut inj = FaultInjector::new(FaultPlan::uniform(0.2), &rng);
            (0..200)
                .map(|_| (inj.observe_fault(4), inj.install_fault(), inj.crashes_now()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn burst_picks_distinct_pops() {
        let rng = DetRng::from_seed(3);
        let mut inj = FaultInjector::new(FaultPlan::uniform(1.0), &rng);
        for _ in 0..200 {
            if let Some((a, b)) = inj.burst_starts(5) {
                assert_ne!(a, b);
                assert!(a < 5 && b < 5);
            }
        }
        assert_eq!(inj.burst_starts(1), None, "single-pop world has no links");
    }

    #[test]
    fn category_streams_are_independent() {
        // Drawing heavily from one category must not change another
        // category's sequence.
        let rng = DetRng::from_seed(11);
        let mut a = FaultInjector::new(FaultPlan::uniform(0.3), &rng);
        let mut b = FaultInjector::new(FaultPlan::uniform(0.3), &rng);
        for _ in 0..500 {
            a.observe_fault(4); // perturb only a's observe stream
        }
        let draws_a: Vec<_> = (0..100).map(|_| a.install_fault()).collect();
        let draws_b: Vec<_> = (0..100).map(|_| b.install_fault()).collect();
        assert_eq!(draws_a, draws_b);
    }

    #[test]
    fn guardrail_plan_fires_only_its_own_categories() {
        let plan = FaultPlan::guardrail(0.5);
        assert!(plan.is_enabled());
        plan.validate().unwrap();
        let rng = DetRng::from_seed(21);
        let mut inj = FaultInjector::new(plan, &rng);
        let mut churn_kinds = [0usize; 3];
        for _ in 0..400 {
            // Legacy categories are zero-rate: no draws, no faults.
            assert_eq!(inj.observe_fault(5), ObserveFault::None);
            assert_eq!(inj.install_fault(), InstallFault::None);
            assert!(!inj.crashes_now());
            match inj.churn_fault(3) {
                ChurnFault::None => {}
                ChurnFault::DeleteInstalled { pick } => {
                    assert!(pick < 3);
                    churn_kinds[0] += 1;
                }
                ChurnFault::InjectOrphan { window, .. } => {
                    assert!((10..=100).contains(&window));
                    churn_kinds[1] += 1;
                }
                ChurnFault::InjectForeign { .. } => churn_kinds[2] += 1,
            }
            inj.targeted_burst();
        }
        let s = inj.stats();
        assert!(churn_kinds.iter().all(|&k| k > 0), "{churn_kinds:?}");
        assert!(s.route_churns > 0 && s.targeted_bursts > 0, "{s:?}");
        assert_eq!(s.observe_timeouts + s.install_errors + s.crashes, 0);
    }

    #[test]
    fn churn_with_nothing_installed_never_deletes() {
        let rng = DetRng::from_seed(8);
        let mut inj = FaultInjector::new(FaultPlan::guardrail(1.0), &rng);
        for _ in 0..100 {
            let fault = inj.churn_fault(0);
            assert!(
                !matches!(fault, ChurnFault::DeleteInstalled { .. }),
                "deletion falls through to injection when the table is empty"
            );
            assert_ne!(fault, ChurnFault::None, "rate 1.0 always churns");
        }
    }

    #[test]
    fn churn_stream_is_independent_of_legacy_streams() {
        // A plan that also draws observe/install faults must produce the
        // same churn sequence as one that draws only churn.
        let rng = DetRng::from_seed(17);
        let mut only_churn = FaultInjector::new(FaultPlan::guardrail(0.4), &rng);
        let mut plan = FaultPlan::uniform(0.4);
        plan.route_churn = 0.4;
        plan.targeted_loss = 0.4;
        let mut both = FaultInjector::new(plan, &rng);
        for _ in 0..300 {
            both.observe_fault(6);
            both.install_fault();
        }
        let a: Vec<_> = (0..100).map(|_| only_churn.churn_fault(5)).collect();
        let b: Vec<_> = (0..100).map(|_| both.churn_fault(5)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut p = FaultPlan::none();
        p.crash = 1.5;
        assert!(p.validate().is_err());
        p.crash = f64::NAN;
        assert!(p.validate().is_err());
        assert!(FaultPlan::uniform(0.0).validate().is_ok());
        assert!(FaultPlan::uniform(1.0).validate().is_ok());
    }
}
