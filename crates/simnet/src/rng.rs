//! Seeded, deterministic randomness for simulations and workloads.
//!
//! Self-contained: the generator is xoshiro256++ (the algorithm behind
//! `rand`'s `SmallRng` on 64-bit targets) seeded through SplitMix64, so
//! the workspace builds with no external crates. On top of the raw
//! stream sit the handful of distributions the testbed needs (Bernoulli
//! losses, uniform jitter, exponential inter-arrivals, normal/lognormal
//! sizes). Normal variates use the Box–Muller transform.
//!
//! Every component that needs randomness derives its own stream from a
//! master seed with [`DetRng::fork`], so adding a consumer never perturbs
//! the draws seen by existing ones. The parallel experiment engine keys
//! whole-shard streams the same way through [`stream_seed`] /
//! [`DetRng::for_stream`]: a shard's stream is a pure function of
//! `(master seed, stable shard key)`, which is what makes sharded runs
//! bit-identical regardless of how many worker threads execute them.

use crate::time::SimDuration;

/// SplitMix64 output mixing — the standard seed expander for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of an independent child stream from a master seed
/// and a stream label, as a pure function.
///
/// Distinct labels yield streams that do not share draws with the
/// master stream or with each other. The experiment engine uses this
/// with a stable shard key so that shard results are independent of
/// worker count and execution order.
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .rotate_left(17)
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ core generator.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic random-number generator for simulation components.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: Xoshiro256pp,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            inner: Xoshiro256pp::from_seed(seed),
        }
    }

    /// Creates the child stream `stream` of `master` directly, without
    /// constructing the parent — equivalent to
    /// `DetRng::from_seed(stream_seed(master, stream))`.
    pub fn for_stream(master: u64, stream: u64) -> Self {
        DetRng::from_seed(stream_seed(master, stream))
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Forking with distinct labels yields streams that do not share draws
    /// with the parent or with each other, so per-link / per-workload
    /// consumers stay decoupled.
    pub fn fork(&self, stream: u64) -> DetRng {
        DetRng::from_seed(stream_seed(self.seed_material(), stream))
    }

    fn seed_material(&self) -> u64 {
        // Clone so forking is a pure function of current state without
        // advancing the parent stream.
        let mut probe = self.inner.clone();
        probe.next_u64()
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds out of order: {lo} > {hi}");
        if lo == hi {
            return lo;
        }
        let v = lo + self.unit() * (hi - lo);
        // Floating rounding can land exactly on `hi`; keep the interval
        // half-open as documented.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }

    /// An unbiased uniform draw in `[0, n)` (Lemire's method).
    fn next_below_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.inner.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.inner.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.next_below_u64(n as u64) as usize
    }

    /// A Bernoulli trial that succeeds with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// A standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A lognormal variate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// An exponential variate with the given rate (events per unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        let u = 1.0 - self.unit();
        -u.ln() / rate
    }

    /// A duration drawn uniformly from `[0, max]`; `ZERO` if `max` is zero.
    pub fn jitter(&mut self, max: SimDuration) -> SimDuration {
        let nanos = max.as_nanos();
        if nanos == 0 {
            SimDuration::ZERO
        } else if nanos == u64::MAX {
            SimDuration::from_nanos(self.inner.next_u64())
        } else {
            SimDuration::from_nanos(self.next_below_u64(nanos + 1))
        }
    }

    /// An exponentially distributed duration with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        assert!(!mean.is_zero(), "mean inter-arrival must be non-zero");
        let secs = self.exponential(1.0 / mean.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(42);
        let mut b = DetRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn forks_are_decoupled() {
        let parent = DetRng::from_seed(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let s1: Vec<f64> = (0..8).map(|_| c1.unit()).collect();
        let s2: Vec<f64> = (0..8).map(|_| c2.unit()).collect();
        assert_ne!(s1, s2);
        // Forking again with the same label reproduces the stream.
        let mut c1b = parent.fork(1);
        let s1b: Vec<f64> = (0..8).map(|_| c1b.unit()).collect();
        assert_eq!(s1, s1b);
    }

    #[test]
    fn stream_seed_is_pure_and_label_sensitive() {
        assert_eq!(stream_seed(9, 3), stream_seed(9, 3));
        assert_ne!(stream_seed(9, 3), stream_seed(9, 4));
        assert_ne!(stream_seed(9, 3), stream_seed(10, 3));
        let mut direct = DetRng::for_stream(9, 3);
        let mut via_seed = DetRng::from_seed(stream_seed(9, 3));
        for _ in 0..16 {
            assert_eq!(direct.next_u64(), via_seed.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::from_seed(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_rate_roughly_matches_p() {
        let mut rng = DetRng::from_seed(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} too far from 0.3");
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut rng = DetRng::from_seed(2);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u), "unit draw {u} out of [0,1)");
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DetRng::from_seed(21);
        for _ in 0..10_000 {
            let v = rng.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&v), "uniform draw {v} out of range");
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::from_seed(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::from_seed(9);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = DetRng::from_seed(3);
        let max = SimDuration::from_millis(2);
        for _ in 0..1000 {
            assert!(rng.jitter(max) <= max);
        }
        assert_eq!(rng.jitter(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = DetRng::from_seed(13);
        for _ in 0..1000 {
            assert!(rng.lognormal(9.8, 1.9) > 0.0);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut rng = DetRng::from_seed(17);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::from_seed(19);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "bucket {i} count {c} too far from uniform"
            );
        }
    }
}
