//! Seeded, deterministic randomness for simulations and workloads.
//!
//! Wraps [`rand::rngs::SmallRng`] and adds the handful of distributions the
//! testbed needs (Bernoulli losses, uniform jitter, exponential
//! inter-arrivals, normal/lognormal sizes) without pulling in `rand_distr`.
//! Normal variates use the Box–Muller transform.
//!
//! Every component that needs randomness derives its own stream from a
//! master seed with [`DetRng::fork`], so adding a consumer never perturbs
//! the draws seen by existing ones.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random-number generator for simulation components.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Forking with distinct labels yields streams that do not share draws
    /// with the parent or with each other, so per-link / per-workload
    /// consumers stay decoupled.
    pub fn fork(&self, stream: u64) -> DetRng {
        // SplitMix64-style mixing of (parent seed material, stream label).
        let mut z = self
            .seed_material()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::from_seed(z)
    }

    fn seed_material(&self) -> u64 {
        // Clone so forking is a pure function of current state without
        // advancing the parent stream.
        let mut probe = self.inner.clone();
        probe.gen::<u64>()
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds out of order: {lo} > {hi}");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// A uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// A Bernoulli trial that succeeds with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// A standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A lognormal variate: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// An exponential variate with the given rate (events per unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        let u = 1.0 - self.unit();
        -u.ln() / rate
    }

    /// A duration drawn uniformly from `[0, max]`; `ZERO` if `max` is zero.
    pub fn jitter(&mut self, max: SimDuration) -> SimDuration {
        if max.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.inner.gen_range(0..=max.as_nanos()))
        }
    }

    /// An exponentially distributed duration with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        assert!(!mean.is_zero(), "mean inter-arrival must be non-zero");
        let secs = self.exponential(1.0 / mean.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(42);
        let mut b = DetRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn forks_are_decoupled() {
        let parent = DetRng::from_seed(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let s1: Vec<f64> = (0..8).map(|_| c1.unit()).collect();
        let s2: Vec<f64> = (0..8).map(|_| c2.unit()).collect();
        assert_ne!(s1, s2);
        // Forking again with the same label reproduces the stream.
        let mut c1b = parent.fork(1);
        let s1b: Vec<f64> = (0..8).map(|_| c1b.unit()).collect();
        assert_eq!(s1, s1b);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::from_seed(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_rate_roughly_matches_p() {
        let mut rng = DetRng::from_seed(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} too far from 0.3");
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::from_seed(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::from_seed(9);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = DetRng::from_seed(3);
        let max = SimDuration::from_millis(2);
        for _ in 0..1000 {
            assert!(rng.jitter(max) <= max);
        }
        assert_eq!(rng.jitter(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = DetRng::from_seed(13);
        for _ in 0..1000 {
            assert!(rng.lognormal(9.8, 1.9) > 0.0);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut rng = DetRng::from_seed(17);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
