//! # riptide-simnet
//!
//! A deterministic, packet-level, discrete-event network and TCP simulator.
//!
//! This crate is the *testbed substrate* for the reproduction of
//! **Riptide: Jump-Starting Back-Office Connections in Cloud Systems**
//! (Flores, Khakpour, Bedi — ICDCS 2016). The paper evaluates on a
//! production CDN; this simulator stands in for that infrastructure with
//! the same knobs a `tc netem` hardware testbed would expose: per-path
//! propagation delay, jitter, random loss, rate limits and finite
//! drop-tail queues, under TCP senders running CUBIC or Reno slow
//! start / congestion avoidance / fast retransmit / RTO.
//!
//! Determinism is a design requirement: every run is a pure function of
//! its construction calls and RNG seed, so the paper's figures regenerate
//! bit-identically.
//!
//! ## Model boundaries
//!
//! * Data segments occupy queue space and can drop; ACKs and handshake
//!   packets are delay-only and lossless (forward-path dynamics are what
//!   initcwnd affects).
//! * Loss recovery is NewReno-style by default; opt-in SACK
//!   (RFC 2018 blocks, RFC 6675-lite hole filling) via [`config::TcpConfig::sack`].
//! * A connection carries data from its opener to its peer; the CDN layer
//!   models "PoP A fetches from PoP B" as a connection opened at B toward
//!   A, since Riptide acts on the data-*sender* side.
//!
//! ## Module map (↔ paper sections)
//!
//! | Module | Role | Paper anchor |
//! |---|---|---|
//! | [`world`] | Event loop, hosts/PoPs, connect-time `initcwnd` policy lookup | §IV-A testbed; §II kernel route lookup |
//! | [`tcp`] | CUBIC/Reno senders, slow start, recovery, RTO | §II slow-start cost model's subject |
//! | [`conn`] | Connection state machine, transfers, reuse | §II-A connection reuse |
//! | [`link`] | netem-style paths: delay/jitter/loss/rate/queues | §IV-A network substrate |
//! | [`packet`], [`event`] | Segments and the deterministic event queue | — |
//! | [`rng`] | xoshiro256++ streams; seed → forked per-purpose streams | determinism requirement |
//! | [`fault`] | Deterministic fault injection (poll timeouts, install failures, crashes, loss bursts) | §IV-D no-harm under failure |
//! | [`stats`], [`trace`] | Per-connection counters and event traces | figure inputs |
//! | [`time`], [`ids`], [`config`] | Sim time, typed ids, TCP knobs | Table I context |
//!
//! ## Quick start
//!
//! ```
//! use riptide_simnet::prelude::*;
//!
//! # fn main() {
//! let mut world = World::new(TcpConfig::default(), 1);
//! let (a, b) = (world.add_pop(), world.add_pop());
//! let (h1, h2) = (world.add_host(a), world.add_host(b));
//! world.set_symmetric_path(a, b, PathConfig::with_delay(SimDuration::from_millis(60)));
//! world.open_and_transfer(h1, h2, 50_000);
//! world.run_until(SimTime::from_secs(2));
//! assert_eq!(world.drain_completed().len(), 1);
//! # }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod conn;
pub mod event;
pub mod fault;
pub mod ids;
pub mod link;
pub mod packet;
pub mod rng;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod trace;
pub mod world;

/// The types most users need, importable in one line.
pub mod prelude {
    pub use crate::config::{CcAlgorithm, TcpConfig};
    pub use crate::conn::ConnState;
    pub use crate::fault::{
        ChurnFault, FaultInjector, FaultPlan, FaultStats, InstallFault, ObserveFault,
    };
    pub use crate::ids::{ConnId, HostId, PopId, TransferId};
    pub use crate::link::{AqmPolicy, LossCause, PathConfig, PathStats};
    pub use crate::rng::DetRng;
    pub use crate::stats::{ConnStats, TransferRecord, WorldStats};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{ConnTrace, TraceEvent};
    pub use crate::world::{InitcwndPolicy, World};
}
