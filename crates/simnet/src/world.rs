//! The simulation world: hosts, PoPs, paths, connections and the
//! deterministic event loop that drives them.
//!
//! # Model
//!
//! * Hosts live in PoPs. Every host has one IPv4 address
//!   (`10.<pop_hi>.<pop_lo>.<n>`), so a PoP is a /24 — matching the paper's
//!   "destinations as routes" discussion where a whole PoP can be grouped
//!   under one prefix.
//! * Traffic between PoPs traverses a unidirectional [`Path`] per ordered
//!   PoP pair. All connections between the same PoP pair share that path's
//!   queue, which is what makes observations of *existing* connections
//!   informative about *new* ones — the premise of the paper.
//! * Data segments occupy queue space and may drop; ACKs and handshake
//!   packets are delay-only (see [`crate::packet`]).
//! * When a host opens a connection, the world consults the host's
//!   [`InitcwndPolicy`] — the hook Riptide plugs into, playing the role of
//!   the kernel's per-route `initcwnd` lookup.
//!
//! # Examples
//!
//! ```
//! use riptide_simnet::prelude::*;
//!
//! let mut world = World::new(TcpConfig::default(), 7);
//! let a = world.add_pop();
//! let b = world.add_pop();
//! let h1 = world.add_host(a);
//! let h2 = world.add_host(b);
//! world.set_symmetric_path(a, b, PathConfig::with_delay(SimDuration::from_millis(40)));
//! let conn = world.open_connection(h1, h2);
//! world.start_transfer(conn, 100_000);
//! world.run_until(SimTime::from_secs(10));
//! let done = world.drain_completed();
//! assert_eq!(done.len(), 1);
//! assert!(done[0].completion_time() > SimDuration::from_millis(80));
//! ```

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use crate::config::TcpConfig;
use crate::conn::{ActiveTransfer, ConnState, Connection, PendingTransfer};
use crate::event::EventQueue;
use crate::ids::{ConnId, HostId, PathId, PopId, TransferId};
use crate::link::{Admission, Path, PathConfig, PathStats};
use crate::packet::{Ack, Control, Segment};
use crate::rng::DetRng;
use crate::stats::{ConnStats, TransferRecord, WorldStats};
use crate::tcp::sender::Outgoing;
use crate::time::{SimDuration, SimTime};
use crate::trace::{ConnTrace, TraceEvent};

/// Decides the initial congestion window for new connections from a host.
///
/// This is the seam between the substrate and Riptide: in Linux the kernel
/// looks up the route to the destination and uses its `initcwnd` attribute;
/// here the world asks the host's policy. Returning `None` falls back to
/// the stack default ([`TcpConfig::initial_cwnd`]).
pub trait InitcwndPolicy {
    /// The initial window for a new connection from `src` to `dst_addr`,
    /// in segments, or `None` for the default.
    fn initial_cwnd(&self, src: HostId, dst_addr: Ipv4Addr) -> Option<u32>;
}

#[derive(Debug)]
struct Host {
    pop: PopId,
    addr: Ipv4Addr,
    open_conns: Vec<ConnId>,
    policy: Option<Rc<dyn InitcwndPolicy>>,
    /// Per-destination cached slow-start threshold (Linux `tcp_metrics`).
    metrics: HashMap<Ipv4Addr, u32>,
}

impl std::fmt::Debug for dyn InitcwndPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InitcwndPolicy")
    }
}

#[derive(Debug)]
struct Pop {
    hosts: Vec<HostId>,
}

#[derive(Debug)]
enum Event {
    Segment(Segment),
    AckPkt(Ack),
    Ctl(Control),
    Rto { conn: ConnId, epoch: u64 },
    DelAck { conn: ConnId, epoch: u64 },
}

/// The simulation: entity storage plus the event loop.
#[derive(Debug)]
pub struct World {
    cfg: TcpConfig,
    rng: DetRng,
    now: SimTime,
    queue: EventQueue<Event>,
    pops: Vec<Pop>,
    hosts: Vec<Host>,
    conns: Vec<Connection>,
    path_index: HashMap<(PopId, PopId), PathId>,
    paths: Vec<Path>,
    completed: Vec<TransferRecord>,
    next_transfer: u64,
    stats: WorldStats,
    traces: HashMap<ConnId, ConnTrace>,
    /// Reusable buffer for draining sender outboxes in [`World::flush`];
    /// kept across events so the hot path stops allocating once warm.
    outbox_scratch: Vec<Outgoing>,
}

impl World {
    /// Creates an empty world with the given TCP stack configuration and
    /// RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`TcpConfig::validate`].
    pub fn new(cfg: TcpConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid tcp config: {e}");
        }
        World {
            cfg,
            rng: DetRng::from_seed(seed),
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            pops: Vec::new(),
            hosts: Vec::new(),
            conns: Vec::new(),
            path_index: HashMap::new(),
            paths: Vec::new(),
            completed: Vec::new(),
            next_transfer: 0,
            stats: WorldStats::default(),
            traces: HashMap::new(),
            outbox_scratch: Vec::new(),
        }
    }

    /// Starts recording wire-level events for `conn` (see
    /// [`crate::trace`]).
    pub fn enable_trace(&mut self, conn: ConnId) {
        self.traces.entry(conn).or_default();
    }

    /// The trace recorded for `conn` so far, if tracing is enabled.
    pub fn trace(&self, conn: ConnId) -> Option<&ConnTrace> {
        self.traces.get(&conn)
    }

    fn trace_push(&mut self, conn: ConnId, event: TraceEvent) {
        // Tracing is off in every large-scale run; skip the hash lookup.
        if self.traces.is_empty() {
            return;
        }
        if let Some(t) = self.traces.get_mut(&conn) {
            t.push(event);
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The stack configuration this world runs.
    pub fn tcp_config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// World-wide counters.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Adds a PoP and returns its id.
    ///
    /// # Panics
    ///
    /// Panics after 65 536 PoPs (the 10.x.y.0/24 addressing plan is full).
    pub fn add_pop(&mut self) -> PopId {
        let id = PopId::from_index(self.pops.len() as u32);
        assert!(self.pops.len() < 65_536, "PoP addressing plan exhausted");
        self.pops.push(Pop { hosts: Vec::new() });
        id
    }

    /// Adds a host to `pop` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the PoP already holds 254 hosts (its /24 is full) or
    /// `pop` does not exist.
    pub fn add_host(&mut self, pop: PopId) -> HostId {
        let n = self.pops[pop.index()].hosts.len();
        assert!(n < 254, "PoP {pop} /24 exhausted");
        let id = HostId::from_index(self.hosts.len() as u32);
        let addr = Ipv4Addr::new(
            10,
            (pop.index() / 256) as u8,
            (pop.index() % 256) as u8,
            (n + 1) as u8,
        );
        self.hosts.push(Host {
            pop,
            addr,
            open_conns: Vec::new(),
            policy: None,
            metrics: HashMap::new(),
        });
        self.pops[pop.index()].hosts.push(id);
        id
    }

    /// The address of `host`.
    pub fn host_addr(&self, host: HostId) -> Ipv4Addr {
        self.hosts[host.index()].addr
    }

    /// The PoP containing `host`.
    pub fn pop_of(&self, host: HostId) -> PopId {
        self.hosts[host.index()].pop
    }

    /// The hosts of `pop`, in creation order.
    pub fn hosts_in_pop(&self, pop: PopId) -> &[HostId] {
        &self.pops[pop.index()].hosts
    }

    /// Number of PoPs.
    pub fn pop_count(&self) -> usize {
        self.pops.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The /24 network address covering all hosts of `pop`.
    pub fn pop_prefix(&self, pop: PopId) -> (Ipv4Addr, u8) {
        (
            Ipv4Addr::new(10, (pop.index() / 256) as u8, (pop.index() % 256) as u8, 0),
            24,
        )
    }

    /// Installs (or replaces) the unidirectional path `src → dst`.
    pub fn set_path(&mut self, src: PopId, dst: PopId, config: PathConfig) {
        let stream = (src.index() as u64) << 20 | dst.index() as u64;
        let rng = self.rng.fork(0x7061_7468 ^ stream);
        match self.path_index.get(&(src, dst)) {
            Some(&pid) => self.paths[pid.index()] = Path::new(config, rng),
            None => {
                let pid = PathId::from_index(self.paths.len() as u32);
                self.paths.push(Path::new(config, rng));
                self.path_index.insert((src, dst), pid);
            }
        }
    }

    /// Installs the same configuration in both directions between two PoPs.
    pub fn set_symmetric_path(&mut self, a: PopId, b: PopId, config: PathConfig) {
        self.set_path(a, b, config.clone());
        self.set_path(b, a, config);
    }

    /// Replaces the impairments of an existing path, keeping its backlog.
    ///
    /// # Panics
    ///
    /// Panics if no path `src → dst` exists.
    pub fn reconfigure_path(&mut self, src: PopId, dst: PopId, config: PathConfig) {
        let pid = self.path_index[&(src, dst)];
        self.paths[pid.index()].reconfigure(config);
    }

    /// Counters for the path `src → dst`, if it exists.
    pub fn path_stats(&self, src: PopId, dst: PopId) -> Option<PathStats> {
        self.path_index
            .get(&(src, dst))
            .map(|pid| self.paths[pid.index()].stats())
    }

    /// The configuration of the path `src → dst`, if it exists.
    pub fn path_config(&self, src: PopId, dst: PopId) -> Option<&PathConfig> {
        self.path_index
            .get(&(src, dst))
            .map(|pid| self.paths[pid.index()].config())
    }

    /// Sets the initial-congestion-window policy for a host (Riptide's
    /// hook). Passing policies shared via `Rc` lets an external agent
    /// mutate the backing table between events.
    pub fn set_host_policy(&mut self, host: HostId, policy: Rc<dyn InitcwndPolicy>) {
        self.hosts[host.index()].policy = Some(policy);
    }

    /// Removes the host's policy, restoring stack defaults.
    pub fn clear_host_policy(&mut self, host: HostId) {
        self.hosts[host.index()].policy = None;
    }

    // ------------------------------------------------------------------
    // Connections and transfers
    // ------------------------------------------------------------------

    /// Opens a TCP connection from `src` to `dst`, returning immediately
    /// with its id; the handshake completes one RTT later. The initial
    /// congestion window comes from the host's policy, defaulting to
    /// [`TcpConfig::initial_cwnd`].
    ///
    /// # Panics
    ///
    /// Panics if no path exists between the hosts' PoPs.
    pub fn open_connection(&mut self, src: HostId, dst: HostId) -> ConnId {
        let src_pop = self.hosts[src.index()].pop;
        let dst_pop = self.hosts[dst.index()].pop;
        assert!(
            self.path_index.contains_key(&(src_pop, dst_pop))
                && self.path_index.contains_key(&(dst_pop, src_pop)),
            "no path between {src_pop} and {dst_pop}"
        );
        let src_addr = self.hosts[src.index()].addr;
        let dst_addr = self.hosts[dst.index()].addr;
        let iw = self.hosts[src.index()]
            .policy
            .as_ref()
            .and_then(|p| p.initial_cwnd(src, dst_addr))
            .unwrap_or(self.cfg.initial_cwnd)
            .max(1);
        let initial_ssthresh = if self.cfg.metrics_cache {
            self.hosts[src.index()]
                .metrics
                .get(&dst_addr)
                .copied()
                .unwrap_or(self.cfg.initial_ssthresh)
        } else {
            self.cfg.initial_ssthresh
        };
        let id = ConnId::from_index(self.conns.len() as u64);
        let fwd_path = self.path_index[&(src_pop, dst_pop)];
        let rev_path = self.path_index[&(dst_pop, src_pop)];
        let conn = Connection::new(
            id,
            src,
            dst,
            src_pop,
            dst_pop,
            fwd_path,
            rev_path,
            src_addr,
            dst_addr,
            iw,
            initial_ssthresh,
            &self.cfg,
            self.now,
        );
        self.conns.push(conn);
        self.hosts[src.index()].open_conns.push(id);
        self.stats.connections_opened += 1;
        // SYN travels to the peer; SYN-ACK comes back (handshake packets
        // are delay-only and lossless, see crate docs).
        if let Some(arrival) = self.paths[fwd_path.index()].admit_control(self.now, false) {
            self.queue
                .schedule(arrival, Event::Ctl(Control::Syn { conn: id }));
        }
        id
    }

    /// Starts a transfer of `bytes` from the connection's source to its
    /// destination. Data is queued behind any transfer already in
    /// progress; if the handshake is still pending the transfer waits for
    /// it. Zero-byte transfers complete immediately.
    ///
    /// # Panics
    ///
    /// Panics if the connection is closed.
    pub fn start_transfer(&mut self, conn: ConnId, bytes: u64) -> TransferId {
        let tid = TransferId::from_index(self.next_transfer);
        self.next_transfer += 1;
        let state = self.conns[conn.index()].state;
        assert!(
            state != ConnState::Closed,
            "cannot transfer on closed {conn}"
        );
        if bytes == 0 {
            let c = &self.conns[conn.index()];
            let rec = TransferRecord {
                transfer: tid,
                conn,
                src: c.src,
                dst: c.dst,
                src_pop: c.src_pop,
                dst_pop: c.dst_pop,
                bytes: 0,
                requested_at: self.now,
                started_at: self.now,
                completed_at: self.now,
                fresh_connection: false,
                initial_cwnd: c.initial_cwnd,
            };
            self.completed.push(rec);
            self.stats.transfers_completed += 1;
            return tid;
        }
        match state {
            ConnState::Connecting => {
                self.conns[conn.index()].pending.push_back(PendingTransfer {
                    id: tid,
                    bytes,
                    requested_at: self.now,
                });
            }
            ConnState::Established => {
                // Linux `tcp_cwnd_restart` re-reads the route's current
                // initcwnd when restarting an idle connection; mirror that
                // by refreshing the sender's restart window from the
                // host's policy before the transfer begins.
                let (src, dst_addr) = {
                    let c = &self.conns[conn.index()];
                    (c.src, c.dst_addr)
                };
                let restart = self.hosts[src.index()]
                    .policy
                    .as_ref()
                    .and_then(|p| p.initial_cwnd(src, dst_addr))
                    .unwrap_or(self.cfg.initial_cwnd);
                self.conns[conn.index()]
                    .sender
                    .set_idle_restart_window(restart);
                self.begin_transfer(conn, tid, bytes, self.now, false);
                self.flush(conn);
            }
            ConnState::Closed => unreachable!(),
        }
        tid
    }

    /// Opens a connection and immediately starts a transfer on it —
    /// the "no idle connection available" case of the paper's probe
    /// infrastructure. The resulting [`TransferRecord`] is marked
    /// `fresh_connection`.
    pub fn open_and_transfer(
        &mut self,
        src: HostId,
        dst: HostId,
        bytes: u64,
    ) -> (ConnId, TransferId) {
        let conn = self.open_connection(src, dst);
        let tid = self.start_transfer(conn, bytes);
        (conn, tid)
    }

    fn begin_transfer(
        &mut self,
        conn: ConnId,
        tid: TransferId,
        bytes: u64,
        requested_at: SimTime,
        fresh: bool,
    ) {
        let segs = self.cfg.segments_for(bytes);
        let c = &mut self.conns[conn.index()];
        let end_seq = c.sender.stream_end() + segs;
        c.active.push_back(ActiveTransfer {
            id: tid,
            bytes,
            end_seq,
            requested_at,
            started_at: self.now,
            fresh_connection: fresh,
        });
        c.sender.write(segs, self.now);
    }

    /// Closes a connection. In-flight and queued transfers are abandoned
    /// without records, mirroring an application-level reset (§II-A's
    /// "unmanageable error cases").
    pub fn close_connection(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn.index()];
        if c.state == ConnState::Closed {
            return;
        }
        c.state = ConnState::Closed;
        c.pending.clear();
        c.active.clear();
        let src = c.src;
        self.hosts[src.index()].open_conns.retain(|&k| k != conn);
    }

    /// Closes every live connection touching `host`, in both directions
    /// — what a machine restart does to its TCP state (and to the far
    /// ends of its peers' connections). In-flight transfers are
    /// abandoned without records, like [`World::close_connection`].
    /// Returns how many connections were closed.
    pub fn reset_host_connections(&mut self, host: HostId) -> usize {
        let ids: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|c| c.state != ConnState::Closed && (c.src == host || c.dst == host))
            .map(|c| c.id)
            .collect();
        let n = ids.len();
        for cid in ids {
            self.close_connection(cid);
        }
        n
    }

    /// Finds an established, idle connection from `src` to `dst`
    /// (oldest first), for the paper's reuse-if-possible probe behaviour.
    pub fn find_idle_connection(&self, src: HostId, dst: HostId) -> Option<ConnId> {
        self.hosts[src.index()]
            .open_conns
            .iter()
            .copied()
            .find(|&cid| {
                let c = &self.conns[cid.index()];
                c.dst == dst && c.is_idle()
            })
    }

    /// Whether a connection is established and idle.
    pub fn conn_is_idle(&self, conn: ConnId) -> bool {
        self.conns[conn.index()].is_idle()
    }

    /// The lifecycle state of a connection.
    pub fn conn_state(&self, conn: ConnId) -> ConnState {
        self.conns[conn.index()].state
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// An `ss -i`-style snapshot of one connection.
    pub fn conn_stats(&self, conn: ConnId) -> ConnStats {
        let c = &self.conns[conn.index()];
        ConnStats {
            conn: c.id,
            src: c.src,
            dst: c.dst,
            src_addr: c.src_addr,
            dst_addr: c.dst_addr,
            state: c.state,
            cwnd: c.sender.cwnd_segments(),
            ssthresh: c.sender.ssthresh_segments(),
            srtt: c.sender.srtt(),
            bytes_acked: c.sender.cum_acked() * self.cfg.mss as u64,
            retransmits: c.sender.retransmits_total(),
            ece_reductions: c.sender.ece_reductions_total(),
            initial_cwnd: c.initial_cwnd,
            opened_at: c.opened_at,
            established_at: c.established_at,
        }
    }

    /// Snapshots of every non-closed connection originating at `host` —
    /// what `ss` would print there.
    pub fn host_conn_stats(&self, host: HostId) -> Vec<ConnStats> {
        self.hosts[host.index()]
            .open_conns
            .iter()
            .map(|&cid| self.conn_stats(cid))
            .collect()
    }

    /// Visits the same snapshots as [`World::host_conn_stats`] without
    /// materialising the intermediate `Vec` — the streaming form the
    /// per-tick `ss` pollers use.
    pub fn each_host_conn_stat(&self, host: HostId, mut f: impl FnMut(ConnStats)) {
        for &cid in &self.hosts[host.index()].open_conns {
            f(self.conn_stats(cid));
        }
    }

    /// Drains the records of transfers completed since the last call.
    pub fn drain_completed(&mut self) -> Vec<TransferRecord> {
        std::mem::take(&mut self.completed)
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Runs every event scheduled at or before `deadline`, then advances
    /// the clock to `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is in the past.
    pub fn run_until(&mut self, deadline: SimTime) {
        assert!(deadline >= self.now, "cannot run backwards");
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.now = t;
            self.dispatch(ev);
        }
        self.now = deadline;
    }

    /// Runs until the event queue is empty (all in-flight work settles).
    pub fn run_to_quiescence(&mut self) {
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            self.dispatch(ev);
        }
    }

    /// Number of pending events (for tests and benchmarks).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn dispatch(&mut self, ev: Event) {
        self.stats.events_processed += 1;
        match ev {
            Event::Segment(seg) => self.on_segment(seg),
            Event::AckPkt(ack) => self.on_ack(ack),
            Event::Ctl(ctl) => self.on_control(ctl),
            Event::Rto { conn, epoch } => self.on_rto(conn, epoch),
            Event::DelAck { conn, epoch } => self.on_delack(conn, epoch),
        }
    }

    fn on_segment(&mut self, seg: Segment) {
        if self.conns[seg.conn.index()].state == ConnState::Closed {
            return;
        }
        self.stats.segments_delivered += 1;
        self.trace_push(
            seg.conn,
            TraceEvent::SegmentDelivered {
                at: self.now,
                seq: seg.seq,
            },
        );
        match self.conns[seg.conn.index()]
            .receiver
            .on_segment_ecn(seg.seq, seg.ecn)
        {
            crate::tcp::receiver::AckDecision::Immediate(ack) => {
                self.send_ack_back(seg.conn, ack);
            }
            crate::tcp::receiver::AckDecision::Deferred { epoch } => {
                self.queue.schedule(
                    self.now + self.cfg.delayed_ack_timeout,
                    Event::DelAck {
                        conn: seg.conn,
                        epoch,
                    },
                );
            }
        }
    }

    fn on_delack(&mut self, conn: ConnId, epoch: u64) {
        if self.conns[conn.index()].state == ConnState::Closed {
            return;
        }
        if let Some(ack) = self.conns[conn.index()].receiver.on_delack_timer(epoch) {
            self.send_ack_back(conn, ack);
        }
    }

    /// Sends an acknowledgement over the reverse path (delay-only).
    fn send_ack_back(&mut self, conn: ConnId, ack: Ack) {
        let pid = self.conns[conn.index()].rev_path;
        if let Some(arrival) = self.paths[pid.index()].admit_control(self.now, false) {
            self.queue.schedule(arrival, Event::AckPkt(ack));
        }
    }

    fn on_ack(&mut self, ack: Ack) {
        let conn = ack.conn;
        if self.conns[conn.index()].state == ConnState::Closed {
            return;
        }
        self.stats.acks_delivered += 1;
        self.conns[conn.index()].sender.on_ack(ack, self.now);
        if !self.traces.is_empty() && self.traces.contains_key(&conn) {
            let cwnd_after = self.conns[conn.index()].sender.cwnd_segments();
            self.trace_push(
                conn,
                TraceEvent::AckDelivered {
                    at: self.now,
                    cum_ack: ack.cum_ack,
                    cwnd_after,
                },
            );
        }
        self.flush(conn);
        self.record_completions(conn);
    }

    fn on_control(&mut self, ctl: Control) {
        match ctl {
            Control::Syn { conn } => {
                if self.conns[conn.index()].state == ConnState::Closed {
                    return;
                }
                let pid = self.conns[conn.index()].rev_path;
                if let Some(arrival) = self.paths[pid.index()].admit_control(self.now, false) {
                    self.queue
                        .schedule(arrival, Event::Ctl(Control::SynAck { conn }));
                }
            }
            Control::SynAck { conn } => {
                if self.conns[conn.index()].state == ConnState::Closed {
                    return;
                }
                {
                    let c = &mut self.conns[conn.index()];
                    c.state = ConnState::Established;
                    c.established_at = Some(self.now);
                }
                self.trace_push(conn, TraceEvent::Established { at: self.now });
                // Release transfers that were waiting on the handshake;
                // the first of them is the fresh-connection transfer.
                let mut released = 0usize;
                while let Some(p) = self.conns[conn.index()].pending.pop_front() {
                    self.begin_transfer(conn, p.id, p.bytes, p.requested_at, released == 0);
                    released += 1;
                }
                self.flush(conn);
            }
        }
    }

    fn on_rto(&mut self, conn: ConnId, epoch: u64) {
        if self.conns[conn.index()].state == ConnState::Closed {
            return;
        }
        if self.conns[conn.index()].sender.on_rto_fire(epoch, self.now) {
            self.trace_push(conn, TraceEvent::RtoFired { at: self.now });
        }
        self.flush(conn);
    }

    /// Moves the sender's queued work onto the wire and into the timer
    /// queue.
    fn flush(&mut self, conn: ConnId) {
        let (pid, wire_bytes) = {
            let c = &self.conns[conn.index()];
            (c.fwd_path, self.cfg.wire_bytes())
        };
        let ecn_capable = self.cfg.ecn;
        let mut outbox = std::mem::take(&mut self.outbox_scratch);
        outbox.clear();
        self.conns[conn.index()]
            .sender
            .drain_outbox_into(&mut outbox);
        if !outbox.is_empty() {
            let path = &mut self.paths[pid.index()];
            let tracing = !self.traces.is_empty() && self.traces.contains_key(&conn);
            let mut trace_events = Vec::new();
            for &out in &outbox {
                if out.retransmit {
                    self.stats.retransmits += 1;
                }
                if tracing {
                    trace_events.push(TraceEvent::SegmentSent {
                        at: self.now,
                        seq: out.seq,
                        retransmit: out.retransmit,
                    });
                }
                match path.admit_ect(self.now, wire_bytes, ecn_capable) {
                    Admission::Deliver { arrival, ecn } => {
                        self.queue.schedule(
                            arrival,
                            Event::Segment(Segment {
                                conn,
                                seq: out.seq,
                                wire_bytes,
                                retransmit: out.retransmit,
                                ecn,
                            }),
                        );
                    }
                    Admission::LostRandom => {
                        // Dropped; the sender recovers via dup-acks or RTO.
                        if tracing {
                            trace_events.push(TraceEvent::SegmentDropped {
                                at: self.now,
                                seq: out.seq,
                                overflow: false,
                            });
                        }
                    }
                    Admission::LostOverflow | Admission::LostAqm => {
                        if tracing {
                            trace_events.push(TraceEvent::SegmentDropped {
                                at: self.now,
                                seq: out.seq,
                                overflow: true,
                            });
                        }
                    }
                }
            }
            for e in trace_events {
                self.trace_push(conn, e);
            }
        }
        outbox.clear();
        self.outbox_scratch = outbox;
        if let Some(req) = self.conns[conn.index()].sender.take_timer_request() {
            self.queue.schedule(
                req.deadline,
                Event::Rto {
                    conn,
                    epoch: req.epoch,
                },
            );
        }
        if let Some(ssthresh) = self.conns[conn.index()].sender.take_ssthresh_update() {
            if self.cfg.metrics_cache {
                let (src, dst_addr) = {
                    let c = &self.conns[conn.index()];
                    (c.src, c.dst_addr)
                };
                self.hosts[src.index()].metrics.insert(dst_addr, ssthresh);
            }
        }
    }

    /// The cached destination metric (`tcp_metrics` ssthresh) a host
    /// holds for `dst_addr`, if any.
    pub fn cached_ssthresh(&self, host: HostId, dst_addr: Ipv4Addr) -> Option<u32> {
        self.hosts[host.index()].metrics.get(&dst_addr).copied()
    }

    fn record_completions(&mut self, conn: ConnId) {
        loop {
            let rec = {
                let c = &mut self.conns[conn.index()];
                match c.active.front() {
                    Some(front) if c.sender.cum_acked() >= front.end_seq => {
                        let t = *front;
                        c.active.pop_front();
                        TransferRecord {
                            transfer: t.id,
                            conn,
                            src: c.src,
                            dst: c.dst,
                            src_pop: c.src_pop,
                            dst_pop: c.dst_pop,
                            bytes: t.bytes,
                            requested_at: t.requested_at,
                            started_at: t.started_at,
                            completed_at: self.now,
                            fresh_connection: t.fresh_connection,
                            initial_cwnd: c.initial_cwnd,
                        }
                    }
                    _ => break,
                }
            };
            self.trace_push(
                conn,
                TraceEvent::TransferCompleted {
                    at: self.now,
                    bytes: rec.bytes,
                },
            );
            self.completed.push(rec);
            self.stats.transfers_completed += 1;
        }
    }
}

/// Convenience seconds-based duration literal used across tests.
pub fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pop_world(delay_ms: u64) -> (World, HostId, HostId) {
        let mut w = World::new(TcpConfig::default(), 42);
        let a = w.add_pop();
        let b = w.add_pop();
        let h1 = w.add_host(a);
        let h2 = w.add_host(b);
        w.set_symmetric_path(
            a,
            b,
            PathConfig::with_delay(SimDuration::from_millis(delay_ms)),
        );
        (w, h1, h2)
    }

    #[test]
    fn addressing_plan() {
        let mut w = World::new(TcpConfig::default(), 1);
        let p0 = w.add_pop();
        let p1 = w.add_pop();
        let h0 = w.add_host(p0);
        let h1 = w.add_host(p0);
        let h2 = w.add_host(p1);
        assert_eq!(w.host_addr(h0), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(w.host_addr(h1), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(w.host_addr(h2), Ipv4Addr::new(10, 0, 1, 1));
        assert_eq!(w.pop_prefix(p1), (Ipv4Addr::new(10, 0, 1, 0), 24));
        assert_eq!(w.pop_of(h1), p0);
        assert_eq!(w.hosts_in_pop(p0), &[h0, h1]);
    }

    #[test]
    fn handshake_takes_one_rtt() {
        let (mut w, h1, h2) = two_pop_world(50);
        let conn = w.open_connection(h1, h2);
        assert_eq!(w.conn_state(conn), ConnState::Connecting);
        w.run_until(SimTime::from_millis(99));
        assert_eq!(w.conn_state(conn), ConnState::Connecting);
        w.run_until(SimTime::from_millis(101));
        assert_eq!(w.conn_state(conn), ConnState::Established);
    }

    #[test]
    fn small_transfer_completes_in_two_rtts_fresh() {
        // 10 KB fits in the default initial window: 1 RTT handshake +
        // 1 RTT data (plus serialization epsilon).
        let (mut w, h1, h2) = two_pop_world(50);
        let (_, _) = w.open_and_transfer(h1, h2, 10_000);
        w.run_until(SimTime::from_secs(5));
        let recs = w.drain_completed();
        assert_eq!(recs.len(), 1);
        let ct = recs[0].completion_time().as_millis_f64();
        assert!((200.0..215.0).contains(&ct), "completion {ct}ms");
        assert!(recs[0].fresh_connection);
    }

    #[test]
    fn file_larger_than_initcwnd_needs_extra_rtts() {
        // 100 KB = 70 segments; iw=10 grows 10,20,40 -> 3 data RTTs.
        let (mut w, h1, h2) = two_pop_world(50);
        w.open_and_transfer(h1, h2, 100_000);
        w.run_until(SimTime::from_secs(5));
        let recs = w.drain_completed();
        let ct = recs[0].completion_time().as_millis_f64();
        assert!((400.0..430.0).contains(&ct), "completion {ct}ms");
    }

    #[test]
    fn larger_initcwnd_cuts_rtts() {
        struct Fixed(u32);
        impl InitcwndPolicy for Fixed {
            fn initial_cwnd(&self, _src: HostId, _dst: Ipv4Addr) -> Option<u32> {
                Some(self.0)
            }
        }
        let (mut w, h1, h2) = two_pop_world(50);
        w.set_host_policy(h1, Rc::new(Fixed(100)));
        w.open_and_transfer(h1, h2, 100_000);
        w.run_until(SimTime::from_secs(5));
        let recs = w.drain_completed();
        let ct = recs[0].completion_time().as_millis_f64();
        // 1 RTT handshake + 1 RTT data.
        assert!((200.0..225.0).contains(&ct), "completion {ct}ms");
        assert_eq!(recs[0].initial_cwnd, 100);
    }

    #[test]
    fn policy_none_falls_back_to_default() {
        struct Never;
        impl InitcwndPolicy for Never {
            fn initial_cwnd(&self, _src: HostId, _dst: Ipv4Addr) -> Option<u32> {
                None
            }
        }
        let (mut w, h1, h2) = two_pop_world(10);
        w.set_host_policy(h1, Rc::new(Never));
        let conn = w.open_connection(h1, h2);
        assert_eq!(w.conn_stats(conn).initial_cwnd, 10);
    }

    #[test]
    fn reused_connection_skips_handshake_and_keeps_window() {
        let (mut w, h1, h2) = two_pop_world(50);
        let (conn, _) = w.open_and_transfer(h1, h2, 100_000);
        w.run_until(SimTime::from_secs(5));
        w.drain_completed();
        assert!(w.conn_is_idle(conn));
        let grown = w.conn_stats(conn).cwnd;
        assert!(grown > 10, "window grew to {grown}");
        // Reuse: second transfer is faster (no handshake, big window).
        w.start_transfer(conn, 100_000);
        w.run_until(SimTime::from_secs(10));
        let recs = w.drain_completed();
        assert_eq!(recs.len(), 1);
        assert!(!recs[0].fresh_connection);
        let ct = recs[0].completion_time().as_millis_f64();
        assert!(ct < 220.0, "reuse completion {ct}ms");
    }

    #[test]
    fn find_idle_connection_semantics() {
        let (mut w, h1, h2) = two_pop_world(10);
        assert_eq!(w.find_idle_connection(h1, h2), None);
        let (conn, _) = w.open_and_transfer(h1, h2, 10_000);
        assert_eq!(w.find_idle_connection(h1, h2), None, "busy conn not idle");
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.find_idle_connection(h1, h2), Some(conn));
        w.close_connection(conn);
        assert_eq!(w.find_idle_connection(h1, h2), None);
    }

    #[test]
    fn close_drops_future_events() {
        let (mut w, h1, h2) = two_pop_world(50);
        let (conn, _) = w.open_and_transfer(h1, h2, 500_000);
        w.run_until(SimTime::from_millis(150));
        w.close_connection(conn);
        w.run_to_quiescence();
        assert!(
            w.drain_completed().is_empty(),
            "no record for aborted transfer"
        );
        assert!(w.host_conn_stats(h1).is_empty());
    }

    #[test]
    fn transfers_queue_fifo_on_one_connection() {
        let (mut w, h1, h2) = two_pop_world(20);
        let conn = w.open_connection(h1, h2);
        let t1 = w.start_transfer(conn, 50_000);
        let t2 = w.start_transfer(conn, 50_000);
        w.run_until(SimTime::from_secs(5));
        let recs = w.drain_completed();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].transfer, t1);
        assert_eq!(recs[1].transfer, t2);
        assert!(recs[0].completed_at <= recs[1].completed_at);
        assert!(recs[0].fresh_connection && !recs[1].fresh_connection);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let (mut w, h1, h2) = two_pop_world(20);
        let conn = w.open_connection(h1, h2);
        w.start_transfer(conn, 0);
        let recs = w.drain_completed();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].completion_time(), SimDuration::ZERO);
    }

    #[test]
    fn lossy_path_still_completes_with_retransmits() {
        let mut w = World::new(TcpConfig::default(), 7);
        let a = w.add_pop();
        let b = w.add_pop();
        let h1 = w.add_host(a);
        let h2 = w.add_host(b);
        w.set_symmetric_path(
            a,
            b,
            PathConfig::with_delay(SimDuration::from_millis(30)).loss(0.05),
        );
        for _ in 0..10 {
            w.open_and_transfer(h1, h2, 100_000);
        }
        w.run_until(SimTime::from_secs(60));
        let recs = w.drain_completed();
        assert_eq!(recs.len(), 10, "all transfers complete despite loss");
    }

    #[test]
    fn sock_stats_reflect_live_windows() {
        let (mut w, h1, h2) = two_pop_world(30);
        let (conn, _) = w.open_and_transfer(h1, h2, 300_000);
        w.run_until(SimTime::from_secs(5));
        let stats = w.host_conn_stats(h1);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].conn, conn);
        assert!(stats[0].cwnd > 10);
        assert!(stats[0].srtt.is_some());
        assert!(stats[0].bytes_acked >= 300_000);
        let srtt = stats[0].srtt.unwrap().as_millis_f64();
        assert!((55.0..80.0).contains(&srtt), "srtt {srtt}ms");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut w = World::new(TcpConfig::default(), seed);
            let a = w.add_pop();
            let b = w.add_pop();
            let h1 = w.add_host(a);
            let h2 = w.add_host(b);
            w.set_symmetric_path(
                a,
                b,
                PathConfig::with_delay(SimDuration::from_millis(40)).loss(0.02),
            );
            for _ in 0..20 {
                w.open_and_transfer(h1, h2, 80_000);
            }
            w.run_until(SimTime::from_secs(30));
            w.drain_completed()
                .iter()
                .map(|r| r.completed_at.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds see different loss");
    }

    #[test]
    fn sack_beats_newreno_under_heavy_loss_statistically() {
        // At 8% loss, individual transfers are RTO lotteries: per-seed
        // outcomes are noisy. Across seeds, SACK's multi-hole recovery
        // must win the majority and the aggregate.
        let run = |sack: bool, seed: u64| {
            let cfg = TcpConfig {
                sack,
                ..TcpConfig::default()
            };
            let mut w = World::new(cfg, seed);
            let a = w.add_pop();
            let b = w.add_pop();
            let h1 = w.add_host(a);
            let h2 = w.add_host(b);
            w.set_symmetric_path(
                a,
                b,
                PathConfig::with_delay(SimDuration::from_millis(50)).loss(0.08),
            );
            let mut total = 0.0;
            for i in 0..15u64 {
                let (conn, _) = w.open_and_transfer(h1, h2, 150_000);
                w.run_until(SimTime::from_secs((i + 1) * 60));
                let recs = w.drain_completed();
                assert_eq!(recs.len(), 1, "sack={sack} seed={seed}: transfer completes");
                total += recs[0].completion_time().as_secs_f64();
                w.close_connection(conn);
            }
            total
        };
        let mut wins = 0;
        let mut total_newreno = 0.0;
        let mut total_sack = 0.0;
        const SEEDS: u64 = 10;
        for seed in 0..SEEDS {
            let nr = run(false, seed);
            let sk = run(true, seed);
            total_newreno += nr;
            total_sack += sk;
            if sk <= nr {
                wins += 1;
            }
        }
        assert!(
            wins * 2 > SEEDS as usize,
            "SACK wins a majority of seeds: {wins}/{SEEDS}"
        );
        assert!(
            total_sack < total_newreno,
            "SACK wins in aggregate: {total_sack:.1}s vs {total_newreno:.1}s"
        );
    }

    #[test]
    fn traces_record_the_full_transfer_story() {
        use crate::trace::TraceEvent;
        let mut w = World::new(TcpConfig::default(), 77);
        let a = w.add_pop();
        let b = w.add_pop();
        let h1 = w.add_host(a);
        let h2 = w.add_host(b);
        w.set_symmetric_path(
            a,
            b,
            PathConfig::with_delay(SimDuration::from_millis(30)).loss(0.1),
        );
        let conn = w.open_connection(h1, h2);
        w.enable_trace(conn);
        w.start_transfer(conn, 50_000); // 35 segments, 10% loss
        w.run_until(SimTime::from_secs(30));
        let trace = w.trace(conn).expect("tracing enabled");
        assert!(!trace.is_empty());
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Established { .. })));
        assert!(
            trace.segments_sent() >= 35,
            "at least one send per segment: {}",
            trace.segments_sent()
        );
        assert!(trace.segments_dropped() > 0, "10% loss shows up");
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::TransferCompleted { bytes: 50_000, .. })));
        // Timestamps are non-decreasing.
        let times: Vec<_> = trace.events().iter().map(|e| e.at()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Render produces one line per event.
        assert_eq!(trace.render().lines().count(), trace.len());
        // Untraced connections record nothing.
        let other = w.open_connection(h1, h2);
        assert!(w.trace(other).is_none());
    }

    #[test]
    fn metrics_cache_seeds_ssthresh_across_connections() {
        // A lossy narrow path: the first connection's loss records an
        // ssthresh; the next connection to the same destination starts
        // in (or near) congestion avoidance instead of blind slow start.
        let mut w = World::new(TcpConfig::default(), 21);
        let a = w.add_pop();
        let b = w.add_pop();
        let h1 = w.add_host(a);
        let h2 = w.add_host(b);
        w.set_symmetric_path(
            a,
            b,
            PathConfig::with_delay(SimDuration::from_millis(20))
                .rate_bps(20_000_000)
                .queue_bytes(48 * 1024),
        );
        let dst = w.host_addr(h2);
        assert_eq!(w.cached_ssthresh(h1, dst), None);
        let (c1, _) = w.open_and_transfer(h1, h2, 2_000_000);
        assert_eq!(w.conn_stats(c1).ssthresh, u32::MAX, "first conn: unset");
        w.run_until(SimTime::from_secs(60));
        w.drain_completed();
        let cached = w
            .cached_ssthresh(h1, dst)
            .expect("bulk flow on a narrow queue hits loss and records ssthresh");
        assert!(cached >= 2);
        let c2 = w.open_connection(h1, h2);
        assert_eq!(w.conn_stats(c2).ssthresh, cached, "seeded from the cache");
    }

    #[test]
    fn metrics_cache_can_be_disabled() {
        let cfg = TcpConfig {
            metrics_cache: false,
            ..TcpConfig::default()
        };
        let mut w = World::new(cfg, 21);
        let a = w.add_pop();
        let b = w.add_pop();
        let h1 = w.add_host(a);
        let h2 = w.add_host(b);
        w.set_symmetric_path(
            a,
            b,
            PathConfig::with_delay(SimDuration::from_millis(20))
                .rate_bps(20_000_000)
                .queue_bytes(48 * 1024),
        );
        w.open_and_transfer(h1, h2, 2_000_000);
        w.run_until(SimTime::from_secs(60));
        assert_eq!(w.cached_ssthresh(h1, w.host_addr(h2)), None);
        let c2 = w.open_connection(h1, h2);
        assert_eq!(w.conn_stats(c2).ssthresh, u32::MAX);
    }

    #[test]
    fn delayed_acks_slow_but_do_not_stall_transfers() {
        let run = |delack: bool| {
            let cfg = TcpConfig {
                delayed_ack: delack,
                ..TcpConfig::default()
            };
            let mut w = World::new(cfg, 42);
            let a = w.add_pop();
            let b = w.add_pop();
            let h1 = w.add_host(a);
            let h2 = w.add_host(b);
            w.set_symmetric_path(a, b, PathConfig::with_delay(SimDuration::from_millis(50)));
            // An odd segment count forces the delayed-ack timer for the
            // final lone segment.
            w.open_and_transfer(h1, h2, 1448 * 7);
            w.run_until(SimTime::from_secs(30));
            let recs = w.drain_completed();
            assert_eq!(recs.len(), 1, "transfer completes (delack={delack})");
            recs[0].completion_time()
        };
        let quick = run(false);
        let delayed = run(true);
        assert!(
            delayed >= quick,
            "delayed acks never speed things up: {quick} vs {delayed}"
        );
        assert!(
            delayed <= quick + SimDuration::from_millis(100),
            "penalty bounded by ~the 40ms timer per stall: {quick} vs {delayed}"
        );
    }

    #[test]
    fn shared_path_congestion_couples_connections() {
        // Many bulk flows squeeze a narrow shared bottleneck; a probe
        // between the same PoPs takes visibly longer than on an idle path.
        let narrow = |w: &mut World, a, b| {
            w.set_symmetric_path(
                a,
                b,
                PathConfig::with_delay(SimDuration::from_millis(20))
                    .rate_bps(20_000_000)
                    .queue_bytes(64 * 1024),
            );
        };
        // Idle baseline.
        let mut w1 = World::new(TcpConfig::default(), 3);
        let (a1, b1) = (w1.add_pop(), w1.add_pop());
        let (h1, h2) = (w1.add_host(a1), w1.add_host(b1));
        narrow(&mut w1, a1, b1);
        w1.open_and_transfer(h1, h2, 100_000);
        w1.run_until(SimTime::from_secs(20));
        let idle_time = w1.drain_completed()[0].completion_time();

        // Congested run.
        let mut w2 = World::new(TcpConfig::default(), 3);
        let (a2, b2) = (w2.add_pop(), w2.add_pop());
        let (g1, g2) = (w2.add_host(a2), w2.add_host(b2));
        narrow(&mut w2, a2, b2);
        for _ in 0..8 {
            w2.open_and_transfer(g1, g2, 2_000_000);
        }
        let (_, probe) = w2.open_and_transfer(g1, g2, 100_000);
        w2.run_until(SimTime::from_secs(60));
        let recs = w2.drain_completed();
        let probe_time = recs
            .iter()
            .find(|r| r.transfer == probe)
            .expect("probe completes")
            .completion_time();
        assert!(
            probe_time > idle_time.saturating_mul(2),
            "congestion visible: idle {idle_time} vs congested {probe_time}"
        );
    }
}
