//! Umbrella crate for the Riptide reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See `README.md` for a tour and `DESIGN.md` for the
//! system inventory.

pub use riptide;
pub use riptide_cdn as cdn;
pub use riptide_linuxnet as linuxnet;
pub use riptide_simnet as simnet;
