//! §III-B "Destinations as Routes": running Riptide at prefix
//! granularity, where one /24 route covers a whole remote PoP.
//!
//! Demonstrates that (a) observations of *any* host in the PoP inform
//! connections to *every* host in it, and (b) the agent installs one
//! route instead of dozens — the overhead reduction the paper argues
//! for when intra-PoP interconnects are uniform.
//!
//! Run with: `cargo run --example prefix_routes`

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use riptide_repro::linuxnet::route::RouteTable;
use riptide_repro::riptide::prelude::*;
use riptide_repro::simnet::time::SimTime;

fn observations() -> Vec<CwndObservation> {
    // Connections to 40 different hosts of the remote PoP 10.0.7.0/24,
    // windows spread around 60.
    (0..40u32)
        .map(|i| CwndObservation {
            dst: Ipv4Addr::new(10, 0, 7, (i + 1) as u8),
            cwnd: 40 + (i % 41),
            bytes_acked: 1_000_000,
            retrans: 0,
            ecn_marks: 0,
        })
        .collect()
}

fn run(granularity: Granularity) -> (usize, Option<u32>) {
    let table = Rc::new(RefCell::new(RouteTable::new()));
    let mut controller = SharedRouteController::new(Rc::clone(&table));
    let config = RiptideConfig::builder()
        .granularity(granularity)
        .history(HistoryStrategy::None)
        .build()
        .expect("valid config");
    let mut agent = RiptideAgent::new(config).expect("valid config");
    let mut observer = FnObserver(observations);
    agent.tick(SimTime::from_secs(1), &mut observer, &mut controller);
    // A host we have NEVER talked to, in the same remote PoP:
    let unseen = Ipv4Addr::new(10, 0, 7, 250);
    let routes = table.borrow().len();
    let window = table.borrow().initcwnd_for(unseen);
    (routes, window)
}

fn main() {
    let (routes, window) = run(Granularity::Host);
    println!("host granularity:   {routes} routes installed; unseen host 10.0.7.250 -> {window:?}");
    assert_eq!(routes, 40);
    assert_eq!(window, None, "host routes say nothing about unseen hosts");

    let (routes, window) = run(Granularity::Prefix(24));
    println!("prefix/24:          {routes} route installed;  unseen host 10.0.7.250 -> {window:?}");
    assert_eq!(routes, 1);
    assert!(window.is_some(), "the PoP-wide route covers unseen hosts");

    println!("\none /24 route replaces 40 host routes and jump-starts connections");
    println!("to hosts never previously contacted — the paper's PoP-granularity case.");
}
