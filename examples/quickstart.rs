//! Quickstart: the whole Riptide loop on one host, in fifty lines.
//!
//! A host has a few live connections to `10.0.0.127`; the agent polls
//! them (the simulated `ss`), learns a window, installs a route (the
//! simulated `ip route`), and from then on *new* connections to that
//! destination start at the learned window instead of the kernel
//! default of 10.
//!
//! Run with: `cargo run --example quickstart`

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use riptide_repro::linuxnet::route::RouteTable;
use riptide_repro::riptide::prelude::*;
use riptide_repro::simnet::time::SimTime;

fn main() {
    let dst = Ipv4Addr::new(10, 0, 0, 127);

    // The kernel-side routing table, shared between the agent (which
    // writes it) and the stack (which reads it at connect time).
    let table = Rc::new(RefCell::new(RouteTable::new()));
    let mut controller = SharedRouteController::new(Rc::clone(&table));

    // Deployment configuration: Table I of the paper.
    let config = RiptideConfig::deployment();
    println!(
        "riptide config: i_u={} ttl={} window=[{}, {}]",
        config.update_interval, config.ttl, config.cwnd_min, config.cwnd_max
    );
    let mut agent = RiptideAgent::new(config).expect("deployment config is valid");

    // Three live connections to the destination, windows 60/80/100 —
    // the situation of the paper's Fig. 7.
    let mut observer = FnObserver(move || {
        [60u32, 80, 100]
            .iter()
            .map(|&cwnd| CwndObservation {
                dst,
                cwnd,
                bytes_acked: 5_000_000,
                retrans: 0,
                ecn_marks: 0,
            })
            .collect()
    });

    // One agent cycle: poll -> average -> blend -> clamp -> install.
    let report = agent.tick(SimTime::from_secs(1), &mut observer, &mut controller);
    println!("tick observed {} connections", report.observed_connections);

    // What the kernel now does for new connections to that destination:
    let initcwnd = table.borrow().initcwnd_for(dst);
    println!("new connections to {dst} start with initcwnd {initcwnd:?}");
    assert_eq!(initcwnd, Some(80));

    // The shell commands an out-of-process deployment would have run:
    println!("\ncommands issued:\n{}", controller.render_log());

    // No traffic for longer than the TTL: the route is withdrawn and the
    // kernel default (10) is restored.
    let mut silence = FnObserver(Vec::new);
    let report = agent.tick(SimTime::from_secs(120), &mut silence, &mut controller);
    println!(
        "after {} expiry(ies): initcwnd {:?}",
        report.expired.len(),
        table.borrow().initcwnd_for(dst)
    );
    assert_eq!(table.borrow().initcwnd_for(dst), None);
}
