//! §V "Additional Algorithms": the control plane warns Riptide about an
//! imminent load-balancing wave, and the agent installs conservative
//! windows until the wave passes — avoiding "sudden crowding" on paths
//! whose history no longer predicts their load.
//!
//! Run with: `cargo run --example load_balancing_advisory`

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use riptide_repro::linuxnet::route::RouteTable;
use riptide_repro::riptide::prelude::*;
use riptide_repro::simnet::time::SimTime;

fn observe_steady() -> Vec<CwndObservation> {
    [("10.0.1.1", 90), ("10.0.2.1", 60), ("10.0.3.1", 120)]
        .iter()
        .map(|&(dst, cwnd)| CwndObservation {
            dst: dst.parse().expect("valid addr"),
            cwnd,
            bytes_acked: 5 << 20,
            retrans: 0,
            ecn_marks: 0,
        })
        .collect()
}

fn show(table: &Rc<RefCell<RouteTable>>, label: &str) {
    let t = table.borrow();
    let w = |s: &str| t.initcwnd_for(s.parse::<Ipv4Addr>().expect("valid addr"));
    println!(
        "{label:<28} 10.0.1.1={:?} 10.0.2.1={:?} 10.0.3.1={:?}",
        w("10.0.1.1"),
        w("10.0.2.1"),
        w("10.0.3.1")
    );
}

fn main() {
    let table = Rc::new(RefCell::new(RouteTable::new()));
    let mut controller = SharedRouteController::new(Rc::clone(&table));
    let mut agent = RiptideAgent::new(
        RiptideConfig::builder()
            .history(HistoryStrategy::None)
            .build()
            .expect("valid config"),
    )
    .expect("valid config");

    // Steady state: windows learned from live traffic.
    let mut observer = FnObserver(observe_steady);
    agent.tick(SimTime::from_secs(1), &mut observer, &mut controller);
    show(&table, "steady state:");

    // The orchestrator announces a rebalancing wave: halve everything.
    agent
        .set_advisory(Advisory::Conservative { factor: 0.5 })
        .expect("valid advisory");
    agent.tick(SimTime::from_secs(2), &mut observer, &mut controller);
    show(&table, "during rebalancing (x0.5):");

    // Maintenance freeze: keep learning, change nothing.
    agent
        .set_advisory(Advisory::Suspend)
        .expect("valid advisory");
    let mut shifted = FnObserver(|| {
        vec![CwndObservation {
            dst: "10.0.1.1".parse().expect("valid addr"),
            cwnd: 200,
            bytes_acked: 5 << 20,
            retrans: 0,
            ecn_marks: 0,
        }]
    });
    agent.tick(SimTime::from_secs(3), &mut shifted, &mut controller);
    show(&table, "frozen (learning continues):");

    // Back to normal: the learned state lands on the next cycle.
    agent
        .set_advisory(Advisory::Normal)
        .expect("valid advisory");
    agent.tick(SimTime::from_secs(4), &mut shifted, &mut controller);
    show(&table, "resumed:");

    println!(
        "\ncommands the deployment would have run:\n{}",
        controller.render_log()
    );
}
