//! The paper's headline experiment, miniaturized: a global CDN where
//! every machine probes every other PoP with 10/50/100 KB objects, run
//! twice — once as a control and once with Riptide on every machine —
//! and compared probe-by-probe.
//!
//! Run with: `cargo run --release --example cdn_probes`

use riptide_repro::cdn::experiment::{probe_sender_sites, ExperimentScale};
use riptide_repro::cdn::prelude::*;
use riptide_repro::cdn::stats::Cdf;

fn main() {
    // A scaled-down run: 12 PoPs across continents, minutes of
    // simulated time. Swap in `ExperimentScale::quick()` or `paper()`
    // for the full 34-PoP reproduction.
    let scale = ExperimentScale {
        sites: 12,
        machines_per_pop: 2,
        ..ExperimentScale::test()
    };
    println!(
        "simulating {} PoPs x {} machines, {} window...",
        scale.sites, scale.machines_per_pop, scale.duration
    );
    let cmp = probe_comparison(&scale);
    println!(
        "control: {} probes; riptide: {} probes\n",
        cmp.control.len(),
        cmp.riptide.len()
    );

    let sender = probe_sender_sites(&scale)[0];
    println!("probes sent from site {sender} (London):");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>9}",
        "size_kb", "arm", "p50_ms", "p90_ms", "gain_%"
    );
    for &size in &[10_000u64, 50_000, 100_000] {
        let pick = |arm: &[ProbeOutcome]| {
            Cdf::new(
                arm.iter()
                    .filter(|p| p.src_site == sender && p.size == size)
                    .map(|p| p.completion.as_millis_f64()),
            )
        };
        let ctl = pick(&cmp.control);
        let rip = pick(&cmp.riptide);
        let gain = (ctl.median() - rip.median()) / ctl.median() * 100.0;
        println!(
            "{:>8} {:>10} {:>12.1} {:>12.1}",
            size / 1000,
            "control",
            ctl.median(),
            ctl.quantile(0.9)
        );
        println!(
            "{:>8} {:>10} {:>12.1} {:>12.1} {:>9.1}",
            size / 1000,
            "riptide",
            rip.median(),
            rip.quantile(0.9),
            gain
        );
    }
    println!("\nexpected shape: 10 KB unchanged (it fits in the default window);");
    println!("50/100 KB faster with Riptide, by whole round trips on far paths.");
}
