//! A netem-style lab: one pair of PoPs, one impaired link, an A/B of
//! initial congestion windows — the experiment you would run with
//! `tc netem` and two machines before believing any of this.
//!
//! Sweeps the link RTT and loss rate and, for each condition, transfers
//! a 100 KB object with initcwnd 10 (kernel default) and initcwnd 80
//! (a Riptide-learned value), printing the completion times and the
//! lossless-model prediction next to them.
//!
//! Run with: `cargo run --release --example netem_lab`

use std::net::Ipv4Addr;
use std::rc::Rc;

use riptide_repro::riptide::model;
use riptide_repro::simnet::prelude::*;
use riptide_repro::simnet::world::InitcwndPolicy;

struct Fixed(u32);

impl InitcwndPolicy for Fixed {
    fn initial_cwnd(&self, _src: HostId, _dst: Ipv4Addr) -> Option<u32> {
        Some(self.0)
    }
}

/// One A/B cell: median completion of `n` fresh-connection transfers.
fn measure(rtt_ms: u64, loss: f64, initcwnd: u32, n: usize) -> f64 {
    let mut times: Vec<f64> = (0..n)
        .map(|i| {
            let mut w = World::new(TcpConfig::default(), 1000 + i as u64);
            let a = w.add_pop();
            let b = w.add_pop();
            let h1 = w.add_host(a);
            let h2 = w.add_host(b);
            w.set_symmetric_path(
                a,
                b,
                PathConfig::with_delay(SimDuration::from_millis(rtt_ms / 2)).loss(loss),
            );
            w.set_host_policy(h1, Rc::new(Fixed(initcwnd)));
            w.open_and_transfer(h1, h2, 100_000);
            w.run_until(SimTime::from_secs(120));
            let recs = w.drain_completed();
            assert_eq!(recs.len(), 1, "transfer must complete");
            recs[0].completion_time().as_millis_f64()
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

fn main() {
    println!("netem-style A/B: 100 KB transfer, fresh connection, iw 10 vs iw 80\n");
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>10} {:>14} {:>14}",
        "rtt_ms", "loss_%", "iw10_ms", "iw80_ms", "saved_ms", "model_iw10_ms", "model_iw80_ms"
    );
    for &rtt_ms in &[20u64, 60, 125, 200, 300] {
        for &loss in &[0.0f64, 0.005, 0.02] {
            let t10 = measure(rtt_ms, loss, 10, 11);
            let t80 = measure(rtt_ms, loss, 80, 11);
            let rtt = SimDuration::from_millis(rtt_ms);
            let m10 =
                model::transfer_time(100_000, model::DEFAULT_MSS, 10, rtt, true).as_millis_f64();
            let m80 =
                model::transfer_time(100_000, model::DEFAULT_MSS, 80, rtt, true).as_millis_f64();
            println!(
                "{:>8} {:>7.1} {:>12.1} {:>12.1} {:>10.1} {:>14.1} {:>14.1}",
                rtt_ms,
                loss * 100.0,
                t10,
                t80,
                t10 - t80,
                m10,
                m80
            );
        }
    }
    println!("\nreading: lossless rows should track the model (handshake + data RTTs);");
    println!("loss erodes the jump-start advantage, exactly the paper's caution about");
    println!("aggressive static windows — which is why Riptide learns instead.");
}
