//! A small, self-contained stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no access to
//! crates-io, so the workspace vendors the *API surface its benches
//! actually use*: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark calibrates a
//! batch size so one batch takes a few milliseconds, runs
//! `sample_size` batches, and reports the median, minimum and maximum
//! ns/iter (plus derived throughput when one was configured). It is a
//! smoke-and-trend harness, not a statistics engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier.
pub use std::hint::black_box;

/// Target wall-time for one measured batch.
const TARGET_BATCH: Duration = Duration::from_millis(5);

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled in by `iter`.
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            median_ns: 0.0,
            min_ns: 0.0,
            max_ns: 0.0,
        }
    }

    /// Measures `routine`, recording ns/iter statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: time a single iteration, then pick a batch size
        // that should take roughly TARGET_BATCH.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            samples_ns.push(elapsed.as_nanos() as f64 / per_batch as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples_ns[samples_ns.len() / 2];
        self.min_ns = samples_ns[0];
        self.max_ns = samples_ns[samples_ns.len() - 1];
    }
}

/// How many logical elements or bytes one iteration processes; used to
/// derive a rate from the measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` tagged with `parameter`, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The top-level benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark, handing the closure a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    let mut line = format!(
        "bench: {label:<48} {:>14}/iter (min {}, max {})",
        format_ns(bencher.median_ns),
        format_ns(bencher.min_ns),
        format_ns(bencher.max_ns),
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / (bencher.median_ns / 1e9);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  [{:.3} Melem/s]", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  [{:.3} MiB/s]", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions; mirrors the two forms the
/// real crate accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("tiny/sum", |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        let mut group = c.benchmark_group("tiny-group");
        group.sample_size(5);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum-to", 128u64), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = tiny_bench
    }

    #[test]
    fn configured_harness_runs() {
        configured();
    }
}
