//! A small, self-contained stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to
//! crates-io, so the workspace vendors the *API surface it actually
//! uses* as this shim: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()`, integer/float range strategies,
//! `collection::vec`, `option::of`, tuple strategies, and a tiny
//! regex-subset string strategy.
//!
//! Semantics: each test runs `ProptestConfig::cases` generated cases
//! (default 256). Generation is deterministic per test (seeded from the
//! test name, overridable with `PROPTEST_SEED`), so CI failures
//! reproduce locally. Unlike real proptest there is **no shrinking**:
//! a failure reports the case number and message only.

pub mod test_runner {
    //! Case execution: configuration, RNG and failure plumbing.

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property did not hold; the message explains why.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => f.write_str(m),
            }
        }
    }

    /// The deterministic generator handed to strategies (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds via SplitMix64 expansion.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform draw in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// An unbiased uniform draw in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0) is meaningless");
            let mut x = self.next_u64();
            let mut m = (x as u128) * (n as u128);
            let mut low = m as u64;
            if low < n {
                let threshold = n.wrapping_neg() % n;
                while low < threshold {
                    x = self.next_u64();
                    m = (x as u128) * (n as u128);
                    low = m as u64;
                }
            }
            (m >> 64) as u64
        }
    }

    /// Drives the per-case loop for one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
        current: u32,
        name: &'static str,
    }

    impl TestRunner {
        /// Builds a runner for the named test.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    // FNV-1a over the test name: stable across runs.
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                });
            TestRunner {
                rng: TestRng::from_seed(seed),
                cases: config.cases,
                current: 0,
                name,
            }
        }

        /// Advances to the next case; `false` when all cases ran.
        pub fn next_case(&mut self) -> bool {
            if self.current < self.cases {
                self.current += 1;
                true
            } else {
                false
            }
        }

        /// The generator for the current case.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }

        /// Records a case outcome, panicking on failure.
        ///
        /// # Panics
        ///
        /// Panics if the case failed, naming the test, the case number
        /// and the failure message.
        pub fn finish_case(&self, outcome: Result<(), TestCaseError>) {
            if let Err(e) = outcome {
                panic!(
                    "proptest {}: case {}/{} failed: {} \
                     (deterministic; set PROPTEST_SEED to vary inputs)",
                    self.name, self.current, self.cases, e
                );
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types with a canonical full-range strategy ([`any`]).
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit() * (hi - lo)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }

    /// `&str` patterns act as string strategies over a small regex
    /// subset: literal characters, `[a-z0-9]`-style classes (ranges and
    /// singles), and `{n}` / `{m,n}` / `?` / `+` / `*` quantifiers
    /// (`+`/`*` capped at 8 repetitions).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min_reps, max_reps) = parse_quantifier(&chars, &mut i, pattern);
            let reps = if min_reps == max_reps {
                min_reps
            } else {
                min_reps + rng.below((max_reps - min_reps + 1) as u64) as usize
            };
            for _ in 0..reps {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
        let mut alphabet = Vec::new();
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                for c in class[j]..=class[j + 2] {
                    alphabet.push(c);
                }
                j += 3;
            } else {
                alphabet.push(class[j]);
                j += 1;
            }
        }
        alphabet
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier lower bound"),
                        n.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length falls in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// The strategy returned by [`btree_map()`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A strategy for `BTreeMap`s with *up to* `size` entries (duplicate
    /// generated keys collapse, as in the real crate).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// The strategy returned by [`btree_set()`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `BTreeSet`s with *up to* `size` elements
    /// (duplicates collapse, as in the real crate).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` from `inner` about half the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests.
///
/// Supports the subset of the real macro this workspace uses: an
/// optional leading `#![proptest_config(...)]`, then one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, ::core::stringify!($name));
                while runner.next_case() {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), runner.rng());
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    runner.finish_case(outcome);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "{} ({:?} != {:?})",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_matches_shape() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{1,6}".generate(&mut rng);
            assert!((2..=7).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::from_seed(2);
        for _ in 0..1000 {
            let a = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (0u8..=32).generate(&mut rng);
            assert!(b <= 32);
            let c = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn the_macro_itself_works(
            xs in crate::collection::vec(1u32..100, 1..20),
            flag in any::<bool>(),
            opt in crate::option::of(5u64..10),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| (1..100).contains(&x)));
            prop_assert_eq!(u8::from(flag) <= 1, true);
            if let Some(v) = opt {
                prop_assert!((5..10).contains(&v), "opt {} out of range", v);
            }
        }
    }
}
